"""Unit tests for thread-backed simulated processes."""

import pytest

from repro.des.engine import DeadlockError
from repro.des.process import ProcessFailed, Scheduler


def test_single_process_sleeps_in_virtual_time():
    sched = Scheduler()
    log = []

    def prog():
        log.append(("start", sched.now))
        sched.current().sleep(2.5)
        log.append(("end", sched.now))
        return "done"

    proc = sched.spawn(prog, name="p")
    sched.run()
    assert log == [("start", 0.0), ("end", 2.5)]
    assert proc.finished.done
    assert proc.result == "done"


def test_two_processes_interleave_deterministically():
    sched = Scheduler()
    log = []

    def prog(name, delay):
        me = sched.current()
        for _ in range(3):
            me.sleep(delay)
            log.append((name, sched.now))

    sched.spawn(prog, "fast", 1.0, name="fast")
    sched.spawn(prog, "slow", 1.5, name="slow")
    sched.run()
    # At t=3.0 both wake; the tie goes to slow, whose wake event was
    # scheduled first (at t=1.5 vs fast's at t=2.0).
    assert log == [
        ("fast", 1.0),
        ("slow", 1.5),
        ("fast", 2.0),
        ("slow", 3.0),
        ("fast", 3.0),
        ("slow", 4.5),
    ]


def test_event_handoff_between_processes():
    sched = Scheduler()
    ev = sched.event()
    log = []

    def producer():
        sched.current().sleep(3.0)
        ev.succeed(42)

    def consumer():
        value = ev.wait()
        log.append((value, sched.now))

    sched.spawn(consumer, name="consumer")
    sched.spawn(producer, name="producer")
    sched.run()
    assert log == [(42, 3.0)]


def test_event_wait_after_completion_returns_immediately():
    sched = Scheduler()
    ev = sched.event()
    log = []

    def prog():
        ev.succeed("early")
        sched.current().sleep(1.0)
        log.append(ev.wait())

    sched.spawn(prog)
    sched.run()
    assert log == ["early"]


def test_multiple_waiters_all_wake():
    sched = Scheduler()
    ev = sched.event()
    woken = []

    def waiter(i):
        ev.wait()
        woken.append(i)

    for i in range(4):
        sched.spawn(waiter, i, name=f"w{i}")

    def trigger():
        sched.current().sleep(5.0)
        ev.succeed(None)

    sched.spawn(trigger)
    sched.run()
    assert sorted(woken) == [0, 1, 2, 3]
    assert sched.now == 5.0


def test_event_failure_propagates_to_waiter():
    sched = Scheduler()
    ev = sched.event()

    def waiter():
        ev.wait()

    def failer():
        ev.fail(ValueError("boom"))

    sched.spawn(waiter)
    sched.spawn(failer)
    with pytest.raises(ProcessFailed):
        sched.run()


def test_process_exception_reraised_with_cause():
    sched = Scheduler()

    def prog():
        raise RuntimeError("rank exploded")

    sched.spawn(prog)
    with pytest.raises(ProcessFailed) as excinfo:
        sched.run()
    assert isinstance(excinfo.value.__cause__, RuntimeError)


def test_blocked_process_raises_deadlock():
    sched = Scheduler()
    ev = sched.event()  # never succeeds

    def prog():
        ev.wait()

    sched.spawn(prog, name="stuck")
    with pytest.raises(DeadlockError, match="stuck"):
        sched.run()


def test_timeout_event():
    sched = Scheduler()
    log = []

    def prog():
        sched.timeout(4.0).wait()
        log.append(sched.now)

    sched.spawn(prog)
    sched.run()
    assert log == [4.0]


def test_any_of_wakes_on_first_completion():
    sched = Scheduler()
    log = []

    def prog():
        first = sched.any_of([sched.timeout(10.0), sched.timeout(2.0)]).wait()
        log.append((sched.now, first.done))

    sched.spawn(prog)
    sched.run(until=20.0)
    assert log == [(2.0, True)]


def test_spawn_from_within_process():
    sched = Scheduler()
    log = []

    def child():
        sched.current().sleep(1.0)
        log.append(("child", sched.now))

    def parent():
        me = sched.current()
        me.sleep(2.0)
        proc = sched.spawn(child, name="child")
        proc.finished.wait()
        log.append(("parent", sched.now))

    sched.spawn(parent, name="parent")
    sched.run()
    assert log == [("child", 3.0), ("parent", 3.0)]


def test_negative_sleep_rejected():
    sched = Scheduler()

    def prog():
        sched.current().sleep(-1.0)

    sched.spawn(prog)
    with pytest.raises(ProcessFailed):
        sched.run()
