"""Differential tests: the incremental max-min solver vs exact refill.

``FlowNetwork(exact=True)`` seeds every rebalance with *all* flows (the
historical behavior); the default incremental network re-fills only the
dirty connected components.  The two must agree **bit for bit** on
every completion time for any schedule — that is the contract the
incremental solver's component argument makes, and what lets fig6 run
2.6x faster without regenerating a single golden.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.des.flows import Capacity, FlowNetwork
from repro.des.process import Scheduler


def _random_schedule(seed: int, nflows: int = 40, ncaps: int = 5):
    """A deterministic random workload: (start, size, rate_cap, cap_ids)."""
    rng = random.Random(seed)
    caps = [round(rng.uniform(0.5, 2.0) * 1e9, 3) for _ in range(ncaps)]
    flows = []
    for _ in range(nflows):
        start = round(rng.uniform(0.0, 0.01), 6)
        size = round(rng.uniform(1e3, 5e6), 3)
        rate_cap = round(rng.uniform(0.1, 1.5) * 1e9, 3)
        picks = rng.sample(range(ncaps), rng.randint(1, min(3, ncaps)))
        flows.append((start, size, rate_cap, tuple(picks)))
    return caps, flows


def _run_schedule(caps_limits, flow_specs, *, exact: bool) -> list[float]:
    """Drive one schedule through a FlowNetwork; returns completion times."""
    sched = Scheduler()
    net = FlowNetwork(sched, exact=exact)
    caps = [Capacity(f"c{i}", limit) for i, limit in enumerate(caps_limits)]
    finish: list[float] = [None] * len(flow_specs)

    def start_flow(i, size, rate_cap, picks):
        done = net.transfer(size, rate_cap, [caps[c] for c in picks])
        done.callbacks.append(lambda _ev, i=i: finish.__setitem__(i, sched.now))

    for i, (start, size, rate_cap, picks) in enumerate(flow_specs):
        sched.engine.schedule(start, start_flow, i, size, rate_cap, picks)
    sched.run()
    assert all(t is not None for t in finish), "a flow never completed"
    return finish


@pytest.mark.parametrize("seed", [0, 1, 7, 42, 1234])
def test_incremental_matches_exact_bit_for_bit(seed):
    caps, flows = _random_schedule(seed)
    exact = _run_schedule(caps, flows, exact=True)
    incremental = _run_schedule(caps, flows, exact=False)
    # == on floats, not approx: the component refill must reproduce the
    # exact solver's arithmetic, not merely be close to it
    assert incremental == exact


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31),
       nflows=st.integers(min_value=1, max_value=25),
       ncaps=st.integers(min_value=1, max_value=4))
def test_incremental_matches_exact_property(seed, nflows, ncaps):
    caps, flows = _random_schedule(seed, nflows=nflows, ncaps=ncaps)
    assert _run_schedule(caps, flows, exact=False) == \
        _run_schedule(caps, flows, exact=True)


def test_disjoint_components_do_not_disturb_each_other():
    """A flow arriving on capacity B must not re-anchor flows on A."""
    sched = Scheduler()
    net = FlowNetwork(sched)
    cap_a = Capacity("a", 1e9)
    cap_b = Capacity("b", 1e9)
    times = {}

    def record(name):
        return lambda _ev: times.__setitem__(name, sched.now)

    net.transfer(1e6, 2e9, [cap_a]).callbacks.append(record("a"))
    # arrives strictly later, on an unrelated capacity
    sched.engine.schedule(
        1e-4,
        lambda: net.transfer(1e6, 2e9, [cap_b]).callbacks.append(record("b")),
    )
    sched.run()
    assert times["a"] == 1e6 / 1e9
    assert times["b"] == 1e-4 + 1e6 / 1e9


def test_departure_frees_bandwidth_for_the_survivor():
    sched = Scheduler()
    net = FlowNetwork(sched)
    cap = Capacity("nic", 1e9)
    times = {}
    net.transfer(1e6, 1e9, [cap]).callbacks.append(
        lambda _ev: times.__setitem__("short", sched.now))
    net.transfer(4e6, 1e9, [cap]).callbacks.append(
        lambda _ev: times.__setitem__("long", sched.now))
    sched.run()
    # fair sharing: both at 0.5 GB/s until the short one drains at 2 ms,
    # then the survivor gets the full NIC for its remaining 3 MB
    assert times["short"] == pytest.approx(2e-3)
    assert times["long"] == pytest.approx(2e-3 + 3e-3)


def test_zero_size_transfer_completes_immediately():
    sched = Scheduler()
    net = FlowNetwork(sched)
    cap = Capacity("nic", 1e9)
    times = []
    net.transfer(0, 1e9, [cap]).callbacks.append(
        lambda _ev: times.append(sched.now))
    sched.run()
    assert times == [0.0]
    assert net.active_flows == 0
