"""AES block cipher tests: FIPS-197 vectors, structure, and properties."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.aes import AES, INV_SBOX, SBOX, gf_mul
from repro.crypto.errors import KeyFormatError

FIPS_PLAINTEXT = bytes.fromhex("00112233445566778899aabbccddeeff")
FIPS_CASES = [
    # (key hex, expected ciphertext hex) — FIPS-197 Appendix C.
    ("000102030405060708090a0b0c0d0e0f", "69c4e0d86a7b0430d8cdb78070b4c55a"),
    (
        "000102030405060708090a0b0c0d0e0f1011121314151617",
        "dda97ca4864cdfe06eaf70a0ec0d7191",
    ),
    (
        "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f",
        "8ea2b7ca516745bfeafc49904b496089",
    ),
]


@pytest.mark.parametrize("key_hex,expected", FIPS_CASES)
def test_fips197_appendix_c_encrypt(key_hex, expected):
    aes = AES(bytes.fromhex(key_hex))
    assert aes.encrypt_block(FIPS_PLAINTEXT).hex() == expected


@pytest.mark.parametrize("key_hex,expected", FIPS_CASES)
def test_fips197_appendix_c_decrypt(key_hex, expected):
    aes = AES(bytes.fromhex(key_hex))
    assert aes.decrypt_block(bytes.fromhex(expected)) == FIPS_PLAINTEXT


def test_aes128_appendix_b_vector():
    # FIPS-197 Appendix B worked example.
    aes = AES(bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c"))
    ct = aes.encrypt_block(bytes.fromhex("3243f6a8885a308d313198a2e0370734"))
    assert ct.hex() == "3925841d02dc09fbdc118597196a0b32"


def test_round_counts():
    assert AES(bytes(16)).rounds == 10
    assert AES(bytes(24)).rounds == 12
    assert AES(bytes(32)).rounds == 14


def test_sbox_is_a_permutation_with_correct_landmarks():
    assert sorted(SBOX) == list(range(256))
    assert SBOX[0x00] == 0x63
    assert SBOX[0x53] == 0xED
    assert all(INV_SBOX[SBOX[i]] == i for i in range(256))


def test_sbox_has_no_fixed_points():
    assert all(SBOX[i] != i for i in range(256))
    assert all(SBOX[i] != (i ^ 0xFF) for i in range(256))


def test_gf_mul_known_values():
    # Classic textbook example: 0x57 * 0x83 = 0xc1 in GF(2^8).
    assert gf_mul(0x57, 0x83) == 0xC1
    assert gf_mul(0x57, 0x13) == 0xFE
    assert gf_mul(0, 0xFF) == 0
    assert gf_mul(1, 0xAB) == 0xAB


@given(st.integers(1, 255), st.integers(1, 255), st.integers(1, 255))
def test_gf_mul_is_associative_and_commutative(a, b, c):
    assert gf_mul(a, b) == gf_mul(b, a)
    assert gf_mul(gf_mul(a, b), c) == gf_mul(a, gf_mul(b, c))


@pytest.mark.parametrize("bad_len", [0, 1, 15, 17, 31, 33])
def test_invalid_key_lengths_rejected(bad_len):
    with pytest.raises(KeyFormatError):
        AES(bytes(bad_len))


def test_non_bytes_key_rejected():
    with pytest.raises(KeyFormatError):
        AES("0123456789abcdef")  # type: ignore[arg-type]


@pytest.mark.parametrize("bad_len", [0, 15, 17])
def test_invalid_block_lengths_rejected(bad_len):
    aes = AES(bytes(16))
    with pytest.raises(ValueError):
        aes.encrypt_block(bytes(bad_len))
    with pytest.raises(ValueError):
        aes.decrypt_block(bytes(bad_len))


@given(st.binary(min_size=16, max_size=16), st.sampled_from([16, 24, 32]))
def test_decrypt_inverts_encrypt(block, key_len):
    aes = AES(bytes(range(key_len)))
    assert aes.decrypt_block(aes.encrypt_block(block)) == block


@given(st.binary(min_size=16, max_size=16))
def test_encryption_is_not_identity(block):
    aes = AES(bytes(32))
    assert aes.encrypt_block(block) != block or block == aes.encrypt_block(block)
    # The real property: two distinct blocks never map to one ciphertext.
    other = bytes([block[0] ^ 1]) + block[1:]
    assert aes.encrypt_block(block) != aes.encrypt_block(other)


def test_cross_check_against_openssl_ecb_single_block():
    cryptography = pytest.importorskip("cryptography")  # noqa: F841
    from cryptography.hazmat.primitives.ciphers import Cipher, algorithms, modes

    import os

    for key_len in (16, 24, 32):
        key = os.urandom(key_len)
        block = os.urandom(16)
        ours = AES(key).encrypt_block(block)
        enc = Cipher(algorithms.AES(key), modes.ECB()).encryptor()
        theirs = enc.update(block) + enc.finalize()
        assert ours == theirs
