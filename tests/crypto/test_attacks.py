"""The §II attacks must *work* against the broken schemes and *fail*
against AES-GCM."""

import pytest

from repro.crypto import attacks
from repro.crypto.errors import AuthenticationError
from repro.crypto.gcm import AESGCM
from repro.crypto.modes import CBC, CTR, ECB
from repro.crypto.otp import BigKeyPad, TrueOneTimePad, xor_bytes

KEY = bytes(range(32))


def test_ecb_block_repetition_leaks_structure():
    ecb = ECB(KEY)
    # A "matrix row" with repeated records — typical HPC payload shape.
    plaintext = (b"\x00" * 16 + b"\x01" * 16) * 4
    repeats = attacks.ecb_block_repetition(ecb, plaintext)
    assert repeats, "ECB must leak repeated blocks"
    assert max(repeats.values()) >= 4


def test_gcm_shows_no_block_repetition():
    gcm = AESGCM(KEY)
    plaintext = (b"\x00" * 16 + b"\x01" * 16) * 4
    ct = gcm.encrypt(bytes(12), plaintext)[:-16]
    blocks = [ct[i : i + 16] for i in range(0, len(ct), 16)]
    assert len(set(blocks)) == len(blocks)


def test_ecb_prefix_equality_oracle():
    ecb = ECB(KEY)
    assert attacks.ecb_prefix_equality_oracle(
        ecb, b"SALARY=100000...rest-a", b"SALARY=100000...rest-b"
    )
    assert not attacks.ecb_prefix_equality_oracle(
        ecb, b"SALARY=100000...rest-a", b"SALARY=200000...rest-b"
    )


def test_two_time_pad_overlap_recovers_plaintext_xor():
    pad, _ = attacks.force_pad_overlap(key_len=256, msg_len=200)
    msg_a = bytes(range(200))
    msg_b = bytes(200 - i for i in range(200))
    leaked = attacks.two_time_pad_xor(pad, msg_a, msg_b)
    assert leaked is not None, "pads must overlap once traffic exceeds the key"
    # Verify the leak equals the true plaintext XOR over the overlap
    # (second message wraps to offset 0; overlap is [0, 144) of msg_b
    # against [0+? ...]): recompute from ground truth instead.
    # Offsets: msg_a at 0..200, msg_b wraps to 0..200 -> overlap 0..200? No:
    # msg_b starts at 0 after wrap, so overlap = [0,200) of both messages'
    # pad range; the overlapping ciphertext segments XOR to P_a ^ P_b there.
    truth = xor_bytes(msg_a, msg_b)
    assert leaked in (truth, truth[: len(leaked)])


def test_no_overlap_returns_none():
    pad = BigKeyPad(key_len=1000)
    assert attacks.two_time_pad_xor(pad, b"a" * 100, b"b" * 100) is None


def test_true_otp_never_overlaps():
    otp = TrueOneTimePad()
    pid1, c1 = otp.encrypt(b"hello")
    pid2, c2 = otp.encrypt(b"hello")
    assert pid1 != pid2
    assert otp.decrypt(pid1, c1) == b"hello"
    assert otp.decrypt(pid2, c2) == b"hello"
    # Equal plaintexts yield (almost surely) different ciphertexts.
    assert c1 != c2 or c1 == c2  # can't assert randomness; assert decrypt only


def test_cbc_bitflip_forges_chosen_plaintext():
    cbc = CBC(KEY)
    # 3 blocks; attacker flips block 1 of the plaintext ("pay" amount).
    plaintext = b"HEADERBLOCK00000" + b"AMOUNT=000000100" + b"TRAILERBLOCK0000"
    forged = attacks.cbc_bitflip(
        cbc,
        plaintext,
        target_block=1,
        original=b"AMOUNT=000000100",
        desired=b"AMOUNT=999999999",
    )
    assert b"AMOUNT=999999999" in forged
    assert forged != plaintext


def test_ctr_bitflip_is_surgical():
    ctr = CTR(KEY)
    forged = attacks.ctr_bitflip(ctr, b"transfer $100", position=10, delta=ord("1") ^ ord("9"))
    assert forged == b"transfer $900"


def test_gcm_rejects_bitflips():
    gcm = AESGCM(KEY)
    nonce = bytes(12)
    ct = bytearray(gcm.encrypt(nonce, b"transfer $100"))
    ct[10] ^= 0x08
    with pytest.raises(AuthenticationError):
        gcm.decrypt(nonce, bytes(ct))


def test_replay_transcript_duplicates_first_message():
    transcript = [b"c1", b"c2"]
    replayed = attacks.replay_capture_and_resend(transcript)
    assert replayed == [b"c1", b"c2", b"c1"]
    # Plain GCM accepts the replayed copy — motivating encmpi.replay.
    gcm = AESGCM(KEY)
    nonce = bytes(12)
    wire = gcm.encrypt(nonce, b"launch")
    assert gcm.decrypt(nonce, wire) == b"launch"
    assert gcm.decrypt(nonce, wire) == b"launch"  # replay accepted!
