"""NonceLedger / NonceGuardedAEAD: the standalone nonce-reuse guard."""

import pytest

from repro.crypto.aead import NonceGuardedAEAD, NonceLedger, get_aead
from repro.crypto.errors import NonceReuseError

KEY = bytes(range(32))


def test_ledger_accepts_fresh_and_rejects_repeat():
    ledger = NonceLedger()
    ledger.check(b"\x00" * 12)
    ledger.check(b"\x01" * 12)
    assert len(ledger) == 2
    with pytest.raises(NonceReuseError):
        ledger.check(b"\x00" * 12)


def test_ledger_normalizes_bytes_like():
    ledger = NonceLedger()
    ledger.check(bytearray(12))
    with pytest.raises(NonceReuseError):
        ledger.check(bytes(12))


def test_guarded_aead_round_trips():
    aead = NonceGuardedAEAD(get_aead(KEY, "pure"))
    assert aead.name == "guarded:pure"
    sealed = aead.seal(b"\x07" * 12, b"payload", b"aad")
    assert aead.open(b"\x07" * 12, sealed, b"aad") == b"payload"


def test_guarded_aead_refuses_second_seal_under_one_nonce():
    aead = NonceGuardedAEAD(get_aead(KEY, "pure"))
    aead.seal(b"\x07" * 12, b"first")
    with pytest.raises(NonceReuseError):
        aead.seal(b"\x07" * 12, b"second")


def test_guarded_aead_open_is_unrestricted():
    # decrypting the same message twice is legitimate
    aead = NonceGuardedAEAD(get_aead(KEY, "pure"))
    sealed = aead.seal(b"\x07" * 12, b"payload")
    assert aead.open(b"\x07" * 12, sealed) == b"payload"
    assert aead.open(b"\x07" * 12, sealed) == b"payload"
