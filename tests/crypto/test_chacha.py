"""ChaCha20-Poly1305 tests against the RFC 8439 vectors."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.chacha import (
    ChaCha20Poly1305,
    chacha20_block,
    chacha20_xor,
    poly1305_mac,
)
from repro.crypto.errors import AuthenticationError, CryptoError, KeyFormatError

# RFC 8439 §2.3.2 block test vector.
RFC_KEY = bytes.fromhex(
    "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f"
)
RFC_NONCE_BLOCK = bytes.fromhex("000000090000004a00000000")


def test_chacha20_block_rfc_vector():
    block = chacha20_block(RFC_KEY, 1, RFC_NONCE_BLOCK)
    assert block.hex() == (
        "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e"
        "d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e"
    )


def test_chacha20_encrypt_rfc_vector():
    # RFC 8439 §2.4.2: the "sunscreen" plaintext.
    nonce = bytes.fromhex("000000000000004a00000000")
    plaintext = (
        b"Ladies and Gentlemen of the class of '99: If I could offer you "
        b"only one tip for the future, sunscreen would be it."
    )
    ct = chacha20_xor(RFC_KEY, 1, nonce, plaintext)
    assert ct.hex().startswith("6e2e359a2568f98041ba0728dd0d6981")
    assert chacha20_xor(RFC_KEY, 1, nonce, ct) == plaintext


def test_poly1305_rfc_vector():
    # RFC 8439 §2.5.2.
    key = bytes.fromhex(
        "85d6be7857556d337f4452fe42d506a80103808afb0db2fd4abff6af4149f51b"
    )
    msg = b"Cryptographic Forum Research Group"
    assert poly1305_mac(key, msg).hex() == "a8061dc1305136c6c22b8baf0c0127a9"


def test_aead_rfc_vector():
    # RFC 8439 §2.8.2.
    key = bytes.fromhex(
        "808182838485868788898a8b8c8d8e8f909192939495969798999a9b9c9d9e9f"
    )
    nonce = bytes.fromhex("070000004041424344454647")
    aad = bytes.fromhex("50515253c0c1c2c3c4c5c6c7")
    plaintext = (
        b"Ladies and Gentlemen of the class of '99: If I could offer you "
        b"only one tip for the future, sunscreen would be it."
    )
    aead = ChaCha20Poly1305(key)
    out = aead.encrypt(nonce, plaintext, aad)
    assert out[-16:].hex() == "1ae10b594f09e26a7e902ecbd0600691"
    assert out[:16].hex() == "d31a8d34648e60db7b86afbc53ef7ec2"
    assert aead.decrypt(nonce, out, aad) == plaintext


def test_tamper_detection():
    aead = ChaCha20Poly1305(bytes(32))
    out = bytearray(aead.encrypt(bytes(12), b"payload", b"hdr"))
    out[3] ^= 1
    with pytest.raises(AuthenticationError):
        aead.decrypt(bytes(12), bytes(out), b"hdr")


def test_wrong_aad_rejected():
    aead = ChaCha20Poly1305(bytes(32))
    out = aead.encrypt(bytes(12), b"payload", b"a")
    with pytest.raises(AuthenticationError):
        aead.decrypt(bytes(12), out, b"b")


def test_short_ciphertext_rejected():
    with pytest.raises(AuthenticationError):
        ChaCha20Poly1305(bytes(32)).decrypt(bytes(12), b"short")


def test_validation():
    with pytest.raises(KeyFormatError):
        ChaCha20Poly1305(bytes(16))
    with pytest.raises(KeyFormatError):
        ChaCha20Poly1305("nope")  # type: ignore[arg-type]
    with pytest.raises(CryptoError):
        chacha20_block(bytes(32), 0, bytes(8))
    with pytest.raises(CryptoError):
        chacha20_block(bytes(32), 2**32, bytes(12))
    with pytest.raises(KeyFormatError):
        poly1305_mac(bytes(16), b"msg")


@settings(max_examples=25, deadline=None)
@given(
    key=st.binary(min_size=32, max_size=32),
    nonce=st.binary(min_size=12, max_size=12),
    plaintext=st.binary(max_size=300),
    aad=st.binary(max_size=50),
)
def test_roundtrip_property(key, nonce, plaintext, aad):
    aead = ChaCha20Poly1305(key)
    assert aead.decrypt(nonce, aead.encrypt(nonce, plaintext, aad), aad) == plaintext


def test_matches_cryptography_if_available():
    cryptography = pytest.importorskip("cryptography")  # noqa: F841
    from cryptography.hazmat.primitives.ciphers.aead import (
        ChaCha20Poly1305 as Ossl,
    )
    import os

    for _ in range(10):
        key, nonce = os.urandom(32), os.urandom(12)
        pt, aad = os.urandom(99), os.urandom(17)
        assert ChaCha20Poly1305(key).encrypt(nonce, pt, aad) == Ossl(key).encrypt(
            nonce, pt, aad
        )


def test_ciphertext_same_layout_as_gcm():
    """Both AEADs produce ct || 16-byte tag, so the encrypted MPI frame
    format is cipher-agnostic."""
    aead = ChaCha20Poly1305(bytes(32))
    assert len(aead.encrypt(bytes(12), b"12345")) == 5 + 16
