"""The unified get_aead() call path, its instance cache, and the
deprecation shims covering the pre-registry class entry points."""

import warnings

import pytest

from repro.crypto import backends
from repro.crypto.aead import get_aead
from repro.crypto.errors import AuthenticationError

KEY = bytes(range(32))
NONCE = bytes(range(12))


def test_shim_warns_exactly_once_and_resolves():
    backends._warned.discard("ChaChaAEAD")  # independent of import order
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        cls_first = getattr(backends, "ChaChaAEAD")
        cls_second = getattr(backends, "ChaChaAEAD")
    deprecations = [w for w in caught if w.category is DeprecationWarning]
    assert len(deprecations) == 1, "shim must warn exactly once per name"
    assert "get_aead" in str(deprecations[0].message)
    assert cls_first is cls_second is backends._ChaChaAEAD


def test_shimmed_class_builds_working_aead():
    backends._warned.add("PureAEAD")  # silence; behaviour is what's under test
    aead = backends.PureAEAD(KEY)
    framed = aead.seal(NONCE, b"payload", b"aad")
    assert get_aead(KEY, "pure").open(NONCE, framed, b"aad") == b"payload"


def test_unknown_attribute_still_raises():
    with pytest.raises(AttributeError):
        backends.NotABackend


def test_get_aead_caches_instances_per_key_and_backend():
    a = get_aead(KEY, "pure")
    b = get_aead(KEY, "pure")
    assert a is b, "same (backend, key) must share one instance"
    other = get_aead(bytes(32), "pure")
    assert other is not a
    # bytearray keys are normalized to bytes before the cache lookup
    assert get_aead(bytearray(KEY), "pure") is a


def test_cached_instance_is_stateless_across_users():
    """Two simulated 'ranks' sharing one cached AEAD must not interfere."""
    rank0 = get_aead(KEY, "pure")
    rank1 = get_aead(KEY, "pure")
    c0 = rank0.seal(NONCE, b"zero")
    c1 = rank1.seal(bytes(12), b"one")
    assert rank1.open(NONCE, c0) == b"zero"
    assert rank0.open(bytes(12), c1) == b"one"
    with pytest.raises(AuthenticationError):
        rank0.open(NONCE, c1)


@pytest.mark.skipif(not backends.HAVE_OPENSSL, reason="cryptography not installed")
@pytest.mark.parametrize("size", [0, 1, 15, 16, 17, 256, 4096, 65536])
@pytest.mark.parametrize("aad", [b"", b"h", b"header-bytes" * 3])
def test_pure_and_openssl_byte_identical_across_aad_and_sizes(size, aad):
    """The GHASH-table cache and batched CTR must not change a single
    output byte: the pure backend stays interchangeable with OpenSSL."""
    plaintext = bytes((7 * i + 13) & 0xFF for i in range(size))
    pure = get_aead(KEY, "pure")
    ossl = get_aead(KEY, "openssl")
    framed = pure.seal(NONCE, plaintext, aad)
    assert framed == ossl.seal(NONCE, plaintext, aad)
    assert ossl.open(NONCE, framed, aad) == plaintext
    assert pure.open(NONCE, framed, aad) == plaintext
