"""Key generation / HMAC / HKDF tests (RFC 4231 + RFC 5869 vectors)."""

import hashlib
import hmac as stdlib_hmac
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.errors import KeyFormatError
from repro.crypto.keys import (
    HARDCODED_KEY_128,
    HARDCODED_KEY_256,
    derive_session_key,
    generate_key,
    hkdf,
    hkdf_expand,
    hkdf_extract,
    hmac_sha256,
)


def test_hardcoded_keys_shapes():
    assert len(HARDCODED_KEY_256) == 32
    assert len(HARDCODED_KEY_128) == 16
    assert HARDCODED_KEY_128 == HARDCODED_KEY_256[:16]


@pytest.mark.parametrize("bits,length", [(128, 16), (192, 24), (256, 32)])
def test_generate_key_lengths(bits, length):
    assert len(generate_key(bits)) == length


def test_generate_key_bad_bits():
    with pytest.raises(KeyFormatError):
        generate_key(512)


def test_hmac_rfc4231_case_1():
    key = b"\x0b" * 20
    data = b"Hi There"
    expected = bytes.fromhex(
        "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
    )
    assert hmac_sha256(key, data) == expected


def test_hmac_rfc4231_case_2():
    assert hmac_sha256(b"Jefe", b"what do ya want for nothing?") == bytes.fromhex(
        "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
    )


def test_hmac_rfc4231_long_key():
    # Case 6: key longer than the block size gets hashed first.
    key = b"\xaa" * 131
    data = b"Test Using Larger Than Block-Size Key - Hash Key First"
    expected = bytes.fromhex(
        "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
    )
    assert hmac_sha256(key, data) == expected


@settings(max_examples=50)
@given(st.binary(max_size=200), st.binary(max_size=200))
def test_hmac_matches_stdlib(key, msg):
    assert hmac_sha256(key, msg) == stdlib_hmac.new(key, msg, hashlib.sha256).digest()


def test_hkdf_rfc5869_case_1():
    ikm = b"\x0b" * 22
    salt = bytes.fromhex("000102030405060708090a0b0c")
    info = bytes.fromhex("f0f1f2f3f4f5f6f7f8f9")
    prk = hkdf_extract(salt, ikm)
    assert prk == bytes.fromhex(
        "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5"
    )
    okm = hkdf_expand(prk, info, 42)
    assert okm == bytes.fromhex(
        "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
        "34007208d5b887185865"
    )


def test_hkdf_rfc5869_case_3_empty_salt_info():
    ikm = b"\x0b" * 22
    okm = hkdf(ikm, salt=b"", info=b"", length=42)
    assert okm == bytes.fromhex(
        "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d"
        "9d201395faa4b61a96c8"
    )


def test_hkdf_expand_limits():
    prk = hkdf_extract(b"", b"ikm")
    with pytest.raises(ValueError):
        hkdf_expand(prk, b"", 0)
    with pytest.raises(ValueError):
        hkdf_expand(prk, b"", 255 * 32 + 1)


def test_derive_session_key_is_deterministic_and_context_bound():
    secret = os.urandom(32)
    k1 = derive_session_key(secret, "comm-world/epoch-0")
    k2 = derive_session_key(secret, "comm-world/epoch-0")
    k3 = derive_session_key(secret, "comm-world/epoch-1")
    assert k1 == k2
    assert k1 != k3
    assert len(k1) == 32
    assert len(derive_session_key(secret, "c", bits=128)) == 16


def test_derive_session_key_bad_bits():
    with pytest.raises(KeyFormatError):
        derive_session_key(b"s", "c", bits=100)
