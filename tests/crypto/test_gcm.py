"""AES-GCM tests: NIST SP 800-38D vectors, tamper detection, properties."""

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.errors import AuthenticationError
from repro.crypto.gcm import AESGCM, _gf128_mul, _inc32

# NIST SP 800-38D AES-256 test vectors (cases 13, 14, 16 of the GCM spec
# appendix as commonly numbered).
KEY_ZERO_256 = bytes(32)
NONCE_ZERO = bytes(12)

NIST_KEY = bytes.fromhex(
    "feffe9928665731c6d6a8f9467308308feffe9928665731c6d6a8f9467308308"
)
NIST_IV = bytes.fromhex("cafebabefacedbaddecaf888")
NIST_PT = bytes.fromhex(
    "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72"
    "1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b39"
)
NIST_AAD = bytes.fromhex("feedfacedeadbeeffeedfacedeadbeefabaddad2")
NIST_CT_AND_TAG = bytes.fromhex(
    "522dc1f099567d07f47f37a32a84427d643a8cdcbfe5c0c97598a2bd2555d1aa"
    "8cb08e48590dbb3da7b08b1056828838c5f61e6393ba7a0abcc9f662"
    "76fc6ece0f4e1768cddf8853bb2d551b"
)


def test_nist_case_empty_plaintext_tag_only():
    gcm = AESGCM(KEY_ZERO_256)
    assert gcm.encrypt(NONCE_ZERO, b"").hex() == "530f8afbc74536b9a963b4f1c4cb738b"


def test_nist_case_zero_block():
    gcm = AESGCM(KEY_ZERO_256)
    out = gcm.encrypt(NONCE_ZERO, bytes(16))
    assert out.hex() == (
        "cea7403d4d606b6e074ec5d3baf39d18" "d0d1c8a799996bf0265b98b5d48ab919"
    )


def test_nist_case_with_aad_roundtrip():
    gcm = AESGCM(NIST_KEY)
    out = gcm.encrypt(NIST_IV, NIST_PT, NIST_AAD)
    assert out == NIST_CT_AND_TAG
    assert gcm.decrypt(NIST_IV, out, NIST_AAD) == NIST_PT


def test_ciphertext_is_plaintext_plus_16_bytes():
    gcm = AESGCM(KEY_ZERO_256)
    for n in (0, 1, 15, 16, 17, 100):
        assert len(gcm.encrypt(NONCE_ZERO, bytes(n))) == n + 16


@pytest.mark.parametrize("flip_index", [0, 5, -17, -1])
def test_any_single_bit_flip_is_detected(flip_index):
    gcm = AESGCM(NIST_KEY)
    out = bytearray(gcm.encrypt(NIST_IV, b"attack at dawn", NIST_AAD))
    out[flip_index] ^= 0x01
    with pytest.raises(AuthenticationError):
        gcm.decrypt(NIST_IV, bytes(out), NIST_AAD)


def test_wrong_aad_is_detected():
    gcm = AESGCM(NIST_KEY)
    out = gcm.encrypt(NIST_IV, b"payload", b"header-1")
    with pytest.raises(AuthenticationError):
        gcm.decrypt(NIST_IV, out, b"header-2")


def test_wrong_nonce_is_detected():
    gcm = AESGCM(NIST_KEY)
    out = gcm.encrypt(NIST_IV, b"payload")
    other = bytes([NIST_IV[0] ^ 1]) + NIST_IV[1:]
    with pytest.raises(AuthenticationError):
        gcm.decrypt(other, out)


def test_wrong_key_is_detected():
    out = AESGCM(NIST_KEY).encrypt(NIST_IV, b"payload")
    with pytest.raises(AuthenticationError):
        AESGCM(KEY_ZERO_256).decrypt(NIST_IV, out)


def test_truncated_ciphertext_rejected():
    gcm = AESGCM(NIST_KEY)
    with pytest.raises(AuthenticationError):
        gcm.decrypt(NIST_IV, b"short")


def test_non_96_bit_nonce_supported():
    gcm = AESGCM(NIST_KEY)
    nonce = bytes(range(8))
    out = gcm.encrypt(nonce, b"hello")
    assert gcm.decrypt(nonce, out) == b"hello"


def test_gf128_identity_and_absorbing():
    x = 0x0123456789ABCDEF0123456789ABCDEF
    one = 1 << 127  # the GCM representation of "1" (MSB-first bit order)
    assert _gf128_mul(x, one) == x
    assert _gf128_mul(x, 0) == 0


@given(st.integers(0, 2**128 - 1), st.integers(0, 2**128 - 1))
@settings(max_examples=50)
def test_gf128_commutative(a, b):
    assert _gf128_mul(a, b) == _gf128_mul(b, a)


def test_inc32_wraps_only_low_word():
    block = bytes(12) + b"\xff\xff\xff\xff"
    assert _inc32(block) == bytes(16)
    block2 = bytes(range(12)) + b"\x00\x00\x00\x07"
    assert _inc32(block2) == bytes(range(12)) + b"\x00\x00\x00\x08"


@settings(max_examples=25, deadline=None)
@given(
    key=st.binary(min_size=32, max_size=32),
    nonce=st.binary(min_size=12, max_size=12),
    plaintext=st.binary(max_size=200),
    aad=st.binary(max_size=64),
)
def test_roundtrip_property(key, nonce, plaintext, aad):
    gcm = AESGCM(key)
    assert gcm.decrypt(nonce, gcm.encrypt(nonce, plaintext, aad), aad) == plaintext


@settings(max_examples=25, deadline=None)
@given(
    key=st.binary(min_size=16, max_size=16),
    nonce=st.binary(min_size=12, max_size=12),
    plaintext=st.binary(max_size=120),
)
def test_matches_openssl_exactly(key, nonce, plaintext):
    cryptography = pytest.importorskip("cryptography")  # noqa: F841
    from cryptography.hazmat.primitives.ciphers.aead import AESGCM as Ossl

    assert AESGCM(key).encrypt(nonce, plaintext) == Ossl(key).encrypt(
        nonce, plaintext, None
    )


def test_nonce_reuse_leaks_xor_of_plaintexts():
    """Documents *why* nonce reuse is catastrophic (GCM is CTR inside):
    same key+nonce means same keystream, so C1^C2 = P1^P2."""
    gcm = AESGCM(NIST_KEY)
    p1 = b"first secret msg"
    p2 = b"second secret!!!"
    c1 = gcm.encrypt(NIST_IV, p1)[:-16]
    c2 = gcm.encrypt(NIST_IV, p2)[:-16]
    xor_ct = bytes(a ^ b for a, b in zip(c1, c2))
    xor_pt = bytes(a ^ b for a, b in zip(p1, p2))
    assert xor_ct == xor_pt
