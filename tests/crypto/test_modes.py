"""Tests for the classical (insecure) modes used by prior encrypted-MPI
systems, plus padding."""

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.errors import CryptoError
from repro.crypto.modes import CBC, CTR, ECB, pkcs7_pad, pkcs7_unpad

KEY = bytes(range(32))


# ---- PKCS#7 -----------------------------------------------------------------


@given(st.binary(max_size=100))
def test_pkcs7_roundtrip(data):
    assert pkcs7_unpad(pkcs7_pad(data)) == data


def test_pkcs7_always_pads():
    assert len(pkcs7_pad(bytes(16))) == 32
    assert pkcs7_pad(b"")[-1] == 16


def test_pkcs7_invalid_padding_rejected():
    with pytest.raises(CryptoError):
        pkcs7_unpad(bytes(16))  # last byte 0 is invalid
    with pytest.raises(CryptoError):
        pkcs7_unpad(b"\x01" * 15 + b"\x05")
    with pytest.raises(CryptoError):
        pkcs7_unpad(b"")
    with pytest.raises(CryptoError):
        pkcs7_unpad(b"\x01" * 17)


# ---- ECB --------------------------------------------------------------------


@given(st.binary(max_size=200))
@settings(max_examples=20, deadline=None)
def test_ecb_roundtrip(data):
    ecb = ECB(KEY)
    assert ecb.decrypt(ecb.encrypt(data)) == data


def test_ecb_is_deterministic():
    ecb = ECB(KEY)
    assert ecb.encrypt(b"same message!") == ecb.encrypt(b"same message!")


def test_ecb_leaks_equal_blocks():
    """The structural leak the paper condemns (ES-MPICH2)."""
    ecb = ECB(KEY)
    pt = b"A" * 16 + b"B" * 16 + b"A" * 16
    ct = ecb.encrypt(pt)
    assert ct[0:16] == ct[32:48]
    assert ct[0:16] != ct[16:32]


def test_ecb_rejects_partial_block():
    with pytest.raises(CryptoError):
        ECB(KEY).decrypt(b"x" * 17)


# ---- CBC --------------------------------------------------------------------


@given(st.binary(max_size=200))
@settings(max_examples=20, deadline=None)
def test_cbc_roundtrip(data):
    cbc = CBC(KEY)
    assert cbc.decrypt(cbc.encrypt(data)) == data


def test_cbc_randomized_by_iv():
    cbc = CBC(KEY)
    assert cbc.encrypt(b"same message!") != cbc.encrypt(b"same message!")


def test_cbc_deterministic_with_fixed_iv():
    cbc = CBC(KEY)
    iv = bytes(16)
    assert cbc.encrypt(b"msg", iv) == cbc.encrypt(b"msg", iv)


def test_cbc_bad_iv_length_rejected():
    with pytest.raises(CryptoError):
        CBC(KEY).encrypt(b"msg", iv=b"short")


def test_cbc_truncated_data_rejected():
    with pytest.raises(CryptoError):
        CBC(KEY).decrypt(bytes(16))  # IV only, no ciphertext block


def test_cbc_has_no_integrity():
    """Tampering CBC ciphertext yields *some* decryption, not an error
    (as long as the padding stays valid) — the §II integrity gap."""
    cbc = CBC(KEY)
    data = bytearray(cbc.encrypt(b"X" * 48))
    data[0] ^= 0xFF  # garble the IV -> garbles plaintext block 0 silently
    tampered = cbc.decrypt(bytes(data))
    assert tampered != b"X" * 48  # changed...
    assert len(tampered) == 48  # ...but accepted


# ---- CTR --------------------------------------------------------------------


@given(st.binary(max_size=200))
@settings(max_examples=20, deadline=None)
def test_ctr_roundtrip(data):
    ctr = CTR(KEY)
    assert ctr.decrypt(ctr.encrypt(data)) == data


def test_ctr_no_padding_overhead():
    ctr = CTR(KEY)
    assert len(ctr.encrypt(b"12345")) == 8 + 5  # nonce + same-size ct


def test_ctr_nonce_reuse_leaks_xor():
    ctr = CTR(KEY)
    nonce = bytes(8)
    c1 = ctr.encrypt(b"AAAAAAAA", nonce)[8:]
    c2 = ctr.encrypt(b"BBBBBBBB", nonce)[8:]
    xor = bytes(a ^ b for a, b in zip(c1, c2))
    assert xor == bytes(a ^ b for a, b in zip(b"AAAAAAAA", b"BBBBBBBB"))


def test_ctr_bad_nonce_length():
    with pytest.raises(CryptoError):
        CTR(KEY).encrypt(b"m", nonce=b"123")
    with pytest.raises(CryptoError):
        CTR(KEY).decrypt(b"1234")
