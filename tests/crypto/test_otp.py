"""Tests for the flawed big-key pad and the true OTP."""

import pytest

from repro.crypto.errors import CryptoError
from repro.crypto.otp import BigKeyPad, TrueOneTimePad, xor_bytes


def test_xor_bytes_roundtrip():
    a, b = b"hello!", b"\x01\x02\x03\x04\x05\x06"
    assert xor_bytes(xor_bytes(a, b), b) == a


def test_xor_bytes_length_mismatch():
    with pytest.raises(ValueError):
        xor_bytes(b"ab", b"abc")


def test_bigkey_roundtrip():
    pad = BigKeyPad(key_len=1024)
    off, ct = pad.encrypt(b"secret data")
    assert pad.decrypt(off, ct) == b"secret data"
    assert ct != b"secret data"


def test_bigkey_offsets_advance_sequentially():
    pad = BigKeyPad(key_len=1024)
    off1, _ = pad.encrypt(b"a" * 100)
    off2, _ = pad.encrypt(b"b" * 100)
    assert (off1, off2) == (0, 100)


def test_bigkey_wraps_and_reuses_pad():
    """The VAN-MPICH2 bug: traffic beyond the key length reuses pad bytes."""
    pad = BigKeyPad(key_len=150)
    off1, _ = pad.encrypt(b"x" * 100)
    off2, _ = pad.encrypt(b"y" * 100)
    assert off1 == 0
    assert off2 == 0  # wrapped: full overlap with message 1


def test_bigkey_message_longer_than_key_rejected():
    pad = BigKeyPad(key_len=64)
    with pytest.raises(CryptoError):
        pad.encrypt(b"z" * 65)


def test_bigkey_decrypt_bad_offset_rejected():
    pad = BigKeyPad(key_len=64)
    with pytest.raises(CryptoError):
        pad.decrypt(60, b"123456")
    with pytest.raises(CryptoError):
        pad.decrypt(-1, b"1")


def test_bigkey_empty_key_rejected():
    with pytest.raises(CryptoError):
        BigKeyPad(big_key=b"")


def test_true_otp_roundtrip_and_unknown_pad():
    otp = TrueOneTimePad()
    pid, ct = otp.encrypt(b"msg")
    assert otp.decrypt(pid, ct) == b"msg"
    with pytest.raises(CryptoError):
        otp.decrypt(99, ct)
    with pytest.raises(CryptoError):
        otp.decrypt(pid, ct + b"x")
