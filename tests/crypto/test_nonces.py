"""Nonce discipline tests."""

import pytest

from repro.crypto.errors import NonceReuseError
from repro.crypto.nonces import (
    NONCE_SIZE,
    CounterNonces,
    NonceAuditor,
    RandomNonces,
    make_nonce_source,
)


def test_random_nonces_are_12_bytes_and_distinct():
    src = RandomNonces()
    nonces = {src.next() for _ in range(100)}
    assert len(nonces) == 100
    assert all(len(n) == NONCE_SIZE for n in nonces)


def test_random_nonces_injectable_rng():
    calls = []

    def fake(n):
        calls.append(n)
        return bytes(n)

    src = RandomNonces(rng=fake)
    assert src.next() == bytes(12)
    assert calls == [12]


def test_counter_nonces_embed_sender_and_count():
    src = CounterNonces(sender_id=7)
    n0, n1 = src.next(), src.next()
    assert n0 == (7).to_bytes(4, "big") + (0).to_bytes(8, "big")
    assert n1 == (7).to_bytes(4, "big") + (1).to_bytes(8, "big")


def test_counter_nonces_distinct_across_senders():
    a = CounterNonces(sender_id=1).next()
    b = CounterNonces(sender_id=2).next()
    assert a != b


def test_counter_sender_id_range_checked():
    with pytest.raises(ValueError):
        CounterNonces(sender_id=-1)
    with pytest.raises(ValueError):
        CounterNonces(sender_id=2**32)


def test_counter_exhaustion_raises():
    src = CounterNonces()
    src._counter = 2**64
    with pytest.raises(NonceReuseError):
        src.next()


def test_auditor_passes_unique_nonces():
    audit = NonceAuditor(CounterNonces())
    nonces = [audit.next() for _ in range(10)]
    assert len(set(nonces)) == 10
    assert audit.issued == 10


def test_auditor_catches_stuck_rng():
    class Stuck:
        def next(self):
            return bytes(12)

    audit = NonceAuditor(Stuck())
    audit.next()
    with pytest.raises(NonceReuseError):
        audit.next()


def test_auditor_check_for_receiver_side_replay():
    audit = NonceAuditor(RandomNonces())
    audit.check(b"n" * 12)
    with pytest.raises(NonceReuseError):
        audit.check(b"n" * 12)


def test_factory():
    assert isinstance(make_nonce_source("random"), RandomNonces)
    assert isinstance(make_nonce_source("counter", 3), CounterNonces)
    with pytest.raises(ValueError):
        make_nonce_source("lottery")


def test_iterators():
    it = iter(CounterNonces())
    assert next(it) != next(it)
    rit = iter(RandomNonces())
    assert len(next(rit)) == NONCE_SIZE
