"""Cross-backend AEAD differential tests.

The simulator treats the AEAD backend as interchangeable byte-work
(`SecurityConfig.backend`): whichever implementation is available must
behave identically at the API boundary.  These tests pin that contract
pairwise: every backend round-trips every vector, the two AES-GCM
implementations (pure, openssl) produce byte-identical ciphertexts and
accept each other's output, and *all* backends reject the same tampered
inputs — a backend that silently accepted a forged message would turn a
host-configuration difference into a security hole.
"""

import pytest

from repro.crypto.aead import NONCE_SIZE, TAG_SIZE, available_backends, get_aead
from repro.crypto.errors import AuthenticationError

KEY = bytes(range(32))
NONCE = bytes(range(NONCE_SIZE))

#: (label, plaintext, aad) vectors spanning the interesting shapes
VECTORS = [
    ("empty", b"", b""),
    ("one-byte", b"\x00", b""),
    ("short", b"attack at dawn", b""),
    ("block-aligned", bytes(64), b""),
    ("odd-length", bytes(range(256)) * 3 + b"xyz", b""),
    ("with-aad", b"payload", b"header-aad"),
    ("aad-only", b"", b"just-aad"),
]

BACKENDS = available_backends()
AES_BACKENDS = [b for b in BACKENDS if b in ("pure", "openssl")]


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("label,plaintext,aad", VECTORS)
def test_round_trip_every_backend(backend, label, plaintext, aad):
    aead = get_aead(KEY, backend)
    assert aead.open(NONCE, aead.seal(NONCE, plaintext, aad), aad) == plaintext


@pytest.mark.parametrize("label,plaintext,aad", VECTORS)
def test_aes_backends_produce_identical_ciphertext(label, plaintext, aad):
    """pure and openssl implement the same cipher; their output must be
    byte-identical, not just mutually decryptable."""
    if len(AES_BACKENDS) < 2:
        pytest.skip("only one AES-GCM backend available")
    sealed = {b: get_aead(KEY, b).seal(NONCE, plaintext, aad) for b in AES_BACKENDS}
    first = sealed[AES_BACKENDS[0]]
    assert all(ct == first for ct in sealed.values())


@pytest.mark.parametrize("sealer", ["pure", "openssl"])
@pytest.mark.parametrize("opener", ["pure", "openssl"])
def test_aes_backends_interoperate(sealer, opener):
    if sealer not in BACKENDS or opener not in BACKENDS:
        pytest.skip("backend unavailable")
    ct = get_aead(KEY, sealer).seal(NONCE, b"cross-impl", b"aad")
    assert get_aead(KEY, opener).open(NONCE, ct, b"aad") == b"cross-impl"


def test_chacha_output_differs_from_aes():
    """chacha is a different cipher — same frame shape, different bytes;
    an AES backend must reject its ciphertext outright."""
    ct_chacha = get_aead(KEY, "chacha").seal(NONCE, b"cipher-agile", b"")
    ct_aes = get_aead(KEY, "pure").seal(NONCE, b"cipher-agile", b"")
    assert len(ct_chacha) == len(ct_aes)
    assert ct_chacha != ct_aes
    with pytest.raises(AuthenticationError):
        get_aead(KEY, "pure").open(NONCE, ct_chacha)


@pytest.mark.parametrize("backend", BACKENDS)
def test_all_backends_reject_tampered_ciphertext(backend):
    aead = get_aead(KEY, backend)
    ct = bytearray(aead.seal(NONCE, b"integrity matters", b""))
    ct[3] ^= 0x40
    with pytest.raises(AuthenticationError):
        aead.open(NONCE, bytes(ct))


@pytest.mark.parametrize("backend", BACKENDS)
def test_all_backends_reject_flipped_tag_bit(backend):
    aead = get_aead(KEY, backend)
    ct = bytearray(aead.seal(NONCE, b"check the tag", b""))
    ct[-1] ^= 0x01
    with pytest.raises(AuthenticationError):
        aead.open(NONCE, bytes(ct))


@pytest.mark.parametrize("backend", BACKENDS)
def test_all_backends_reject_wrong_aad(backend):
    aead = get_aead(KEY, backend)
    ct = aead.seal(NONCE, b"bound to header", b"src=0,tag=7")
    with pytest.raises(AuthenticationError):
        aead.open(NONCE, ct, b"src=1,tag=7")
    with pytest.raises(AuthenticationError):
        aead.open(NONCE, ct, b"")


@pytest.mark.parametrize("backend", BACKENDS)
def test_all_backends_reject_truncated_tag(backend):
    aead = get_aead(KEY, backend)
    ct = aead.seal(NONCE, b"short tag", b"")
    with pytest.raises(AuthenticationError):
        aead.open(NONCE, ct[: -TAG_SIZE // 2])


@pytest.mark.parametrize("backend", BACKENDS)
def test_all_backends_reject_wrong_nonce(backend):
    aead = get_aead(KEY, backend)
    ct = aead.seal(NONCE, b"nonce binds", b"")
    other = bytes(NONCE_SIZE)
    assert other != NONCE
    with pytest.raises(AuthenticationError):
        aead.open(other, ct)
