"""AEAD interface, registry, and backend equivalence tests."""

import os

import pytest

from repro.crypto.aead import WIRE_OVERHEAD, available_backends, get_aead
from repro.crypto.backends import HAVE_OPENSSL
from repro.crypto.errors import AuthenticationError, CryptoError, KeyFormatError

KEY = bytes(range(32))
NONCE = bytes(12)


def test_registry_lists_pure():
    assert "pure" in available_backends()


def test_auto_prefers_openssl_when_available():
    aead = get_aead(KEY, "auto")
    if HAVE_OPENSSL:
        assert aead.name == "openssl"
    else:
        assert aead.name == "pure"


def test_unknown_backend_rejected():
    with pytest.raises(CryptoError, match="unknown AEAD backend"):
        get_aead(KEY, "enigma")


@pytest.mark.parametrize("backend", ["pure"] + (["openssl"] if HAVE_OPENSSL else []))
def test_seal_open_roundtrip(backend):
    aead = get_aead(KEY, backend)
    ct = aead.seal(NONCE, b"payload", b"hdr")
    assert aead.open(NONCE, ct, b"hdr") == b"payload"


@pytest.mark.parametrize("backend", ["pure"] + (["openssl"] if HAVE_OPENSSL else []))
def test_tamper_detection(backend):
    aead = get_aead(KEY, backend)
    ct = bytearray(aead.seal(NONCE, b"payload"))
    ct[0] ^= 1
    with pytest.raises(AuthenticationError):
        aead.open(NONCE, bytes(ct))


@pytest.mark.skipif(not HAVE_OPENSSL, reason="cryptography not installed")
def test_backends_byte_identical():
    for _ in range(10):
        key = os.urandom(32)
        nonce = os.urandom(12)
        pt = os.urandom(77)
        aad = os.urandom(13)
        assert get_aead(key, "pure").seal(nonce, pt, aad) == get_aead(
            key, "openssl"
        ).seal(nonce, pt, aad)


def test_wire_size_is_plus_28():
    """Algorithm 1: an ℓ-byte message becomes ℓ+28 bytes on the wire."""
    aead = get_aead(KEY)
    assert WIRE_OVERHEAD == 28
    assert aead.wire_size(0) == 28
    assert aead.wire_size(2**21) == 2**21 + 28


@pytest.mark.parametrize("key_len,bits", [(16, 128), (24, 192), (32, 256)])
def test_key_bits(key_len, bits):
    assert get_aead(bytes(key_len)).key_bits == bits


def test_bad_key_rejected():
    with pytest.raises(KeyFormatError):
        get_aead(bytes(20))
    with pytest.raises(KeyFormatError):
        get_aead("not-bytes", "pure")  # type: ignore[arg-type]
