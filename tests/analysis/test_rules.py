"""Rule-by-rule fixtures: each rule gets a bad twin that fires exactly
its id and a good twin that is clean.

The fixtures are deliberately minimal rank programs (a function taking
``ctx`` is rank scope), so a rule regression shows up as either a
missing id on the bad twin or a phantom id on the good twin.
"""

import textwrap

from repro.analysis import all_rules, lint_source


def ids(source: str) -> list[str]:
    src = textwrap.dedent(source)
    return sorted({f.rule for f in lint_source(src, "<fixture>")})


def findings(source: str):
    return lint_source(textwrap.dedent(source), "<fixture>")


# ---------------------------------------------------------------- MPI001

BAD_HEAD_TO_HEAD = """
    TAG = 5

    def exchange(ctx):
        peer = 1 - ctx.rank
        if ctx.rank == 0:
            data, _ = ctx.comm.recv(peer, TAG)
            ctx.comm.send(b"x", peer, TAG)
        else:
            data, _ = ctx.comm.recv(peer, TAG)
            ctx.comm.send(b"x", peer, TAG)
        return data
"""

GOOD_HEAD_TO_HEAD = """
    TAG = 5

    def exchange(ctx):
        peer = 1 - ctx.rank
        if ctx.rank == 0:
            ctx.comm.send(b"x", peer, TAG)
            data, _ = ctx.comm.recv(peer, TAG)
        else:
            data, _ = ctx.comm.recv(peer, TAG)
            ctx.comm.send(b"x", peer, TAG)
        return data
"""


def test_mpi001_recv_recv_fires():
    assert ids(BAD_HEAD_TO_HEAD) == ["MPI001"]


def test_mpi001_send_send_fires():
    assert ids(BAD_HEAD_TO_HEAD.replace("recv(peer, TAG)",
                                        "send(b'x', peer, TAG)")
               ) == ["MPI001"]


def test_mpi001_staggered_is_clean():
    assert ids(GOOD_HEAD_TO_HEAD) == []


def test_mpi001_early_return_idiom():
    # ``if cond: ...; return`` followed by the other branch's code is
    # the same head-to-head shape without an explicit else.
    assert ids("""
        TAG = 5

        def exchange(ctx):
            peer = 1 - ctx.rank
            if ctx.rank == 0:
                data, _ = ctx.comm.recv(peer, TAG)
                ctx.comm.send(b"x", peer, TAG)
                return data
            data, _ = ctx.comm.recv(peer, TAG)
            ctx.comm.send(b"x", peer, TAG)
            return data
    """) == ["MPI001"]


def test_mpi001_severity_and_hint():
    (f,) = findings(BAD_HEAD_TO_HEAD)
    assert f.severity == "error"
    assert f.hint


# ---------------------------------------------------------------- MPI002

def test_mpi002_magic_tag_fires():
    assert ids("""
        def step(ctx):
            ctx.comm.send(b"x", 1, 42)
    """) == ["MPI002"]


def test_mpi002_named_constant_is_clean():
    assert ids("""
        TAG_DATA = 42

        def step(ctx):
            ctx.comm.send(b"x", 1, TAG_DATA)
    """) == []


def test_mpi002_tag_zero_is_clean():
    assert ids("""
        def step(ctx):
            ctx.comm.send(b"x", 1, 0)
    """) == []


# ---------------------------------------------------------------- MPI003

def test_mpi003_collision_fires():
    assert ids("""
        TAG_A = 7
        TAG_B = 7

        def step(ctx):
            ctx.comm.send(b"x", 1, TAG_A)
            ctx.comm.send(b"y", 1, TAG_B)
    """) == ["MPI003"]


def test_mpi003_distinct_values_clean():
    assert ids("""
        TAG_A = 7
        TAG_B = 8

        def step(ctx):
            ctx.comm.send(b"x", 1, TAG_A)
            ctx.comm.send(b"y", 1, TAG_B)
    """) == []


# ---------------------------------------------------------------- MPI004

def test_mpi004_rank_gated_collective_fires():
    assert ids("""
        def step(ctx):
            if ctx.rank == 0:
                ctx.comm.bcast(b"x", 0)
    """) == ["MPI004"]


def test_mpi004_unconditional_collective_clean():
    assert ids("""
        def step(ctx):
            data = b"x" if ctx.rank == 0 else None
            ctx.comm.bcast(data, 0, nbytes=1)
    """) == []


def test_mpi004_matched_in_both_branches_clean():
    assert ids("""
        def step(ctx):
            if ctx.rank == 0:
                ctx.comm.bcast(b"x", 0)
            else:
                ctx.comm.bcast(None, 0, nbytes=1)
    """) == []


# ---------------------------------------------------------------- MPI005

def test_mpi005_deprecated_crypto_mode_fires():
    assert ids("""
        from repro.encmpi import SecurityConfig

        CFG = SecurityConfig(library="openssl", crypto_mode="modeled")
    """) == ["MPI005"]


def test_mpi005_fires_inside_rank_scope_too():
    assert ids("""
        from repro.encmpi import EncryptedComm, SecurityConfig

        def step(ctx):
            enc = EncryptedComm(ctx, SecurityConfig(crypto_mode="real"))
    """) == ["MPI005"]


def test_mpi005_typed_plan_is_clean():
    assert ids("""
        from repro.encmpi import CryptoPlan, SecurityConfig

        CFG = SecurityConfig(
            library="openssl",
            crypto=CryptoPlan(mode="cryptmpi", bytework="modeled"),
        )
    """) == []


# ---------------------------------------------------------------- DET001

def test_det001_wall_clock_fires():
    assert ids("""
        import time

        def step(ctx):
            return time.perf_counter()
    """) == ["DET001"]


def test_det001_from_import_fires():
    assert ids("""
        from time import time

        def step(ctx):
            return time()
    """) == ["DET001"]


def test_det001_ctx_now_is_clean():
    assert ids("""
        def step(ctx):
            return ctx.now
    """) == []


def test_det001_host_side_code_is_clean():
    # wall clock outside rank scope is the harness's business
    assert ids("""
        import time

        def measure():
            return time.perf_counter()
    """) == []


# ---------------------------------------------------------------- DET002

def test_det002_global_random_fires():
    assert ids("""
        import random

        def step(ctx):
            return random.random()
    """) == ["DET002"]


def test_det002_seeded_generator_clean():
    assert ids("""
        import random

        def step(ctx):
            rng = random.Random(ctx.rank)
            return rng.random()
    """) == []


# ---------------------------------------------------------------- DET003

def test_det003_set_iteration_fires():
    assert ids("""
        def step(ctx):
            out = []
            for item in {1, 2, 3}:
                out.append(item)
            return out
    """) == ["DET003"]


def test_det003_merge_function_fires_without_ctx():
    assert ids("""
        def merge_results(parts):
            return [p for p in set(parts)]
    """) == ["DET003"]


def test_det003_sorted_iteration_clean():
    assert ids("""
        def step(ctx):
            return [item for item in sorted({1, 2, 3})]
    """) == []


# ---------------------------------------------------------------- DET004

FIT_PATH = "src/repro/models/predict.py"

CLOCK_IN_FIT = """
    import time

    def calibrate(cache_dir=None):
        started = time.perf_counter()
        return started
"""


def path_ids(source: str, path: str) -> list[str]:
    return sorted({f.rule for f in
                   lint_source(textwrap.dedent(source), path)})


def test_det004_wall_clock_in_fit_path_fires():
    assert path_ids(CLOCK_IN_FIT, FIT_PATH) == ["DET004"]


def test_det004_from_import_fires():
    assert path_ids("""
        from time import monotonic

        def fit_monotone(points):
            return monotonic()
    """, FIT_PATH) == ["DET004"]


def test_det004_datetime_now_fires():
    assert path_ids("""
        import datetime

        def stamp():
            return datetime.datetime.now()
    """, FIT_PATH) == ["DET004"]


def test_det004_outside_fit_path_clean():
    # the same source is fine anywhere else (host-side harness code may
    # time itself; DET001 still guards rank programs)
    assert path_ids(CLOCK_IN_FIT, "src/repro/experiments/cli.py") == []


def test_det004_fit_path_without_clock_clean():
    assert path_ids("""
        def calibrate(points):
            return sum(v for _, v in points)
    """, FIT_PATH) == []


# ---------------------------------------------------------------- CRY001

def test_cry001_constant_nonce_fires():
    assert ids("""
        NONCE = b"\\x00" * 12

        def protect(aead, data):
            return aead.seal(NONCE, data)
    """) == ["CRY001"]


def test_cry001_literal_nonce_fires():
    assert ids("""
        def protect(aead, data):
            return aead.seal(bytes(12), data)
    """) == ["CRY001"]


def test_cry001_reports_once_per_binding():
    found = findings("""
        def protect(aead, a, b):
            nonce = bytes(12)
            x = aead.seal(nonce, a)
            y = aead.seal(nonce, b)
            return x, y
    """)
    assert [f.rule for f in found] == ["CRY001"]


def test_cry001_fresh_nonce_clean():
    assert ids("""
        def protect(aead, nonces, data):
            return aead.seal(nonces.next(), data)
    """) == []


def test_cry001_ignores_file_open():
    # pathlib-style .open(path) must not be mistaken for AEAD open()
    assert ids("""
        def read(path):
            with path.open() as fh:
                return fh.read()
    """) == []


# ---------------------------------------------------------------- CRY002

def test_cry002_constant_sender_fires():
    assert ids("""
        from repro.crypto.nonces import CounterNonces

        def step(ctx):
            return CounterNonces(0)
    """) == ["CRY002"]


def test_cry002_make_nonce_source_fires():
    assert ids("""
        from repro.crypto.nonces import make_nonce_source

        def step(ctx):
            return make_nonce_source("counter", 0)
    """) == ["CRY002"]


def test_cry002_rank_sender_clean():
    assert ids("""
        from repro.crypto.nonces import CounterNonces, make_nonce_source

        def step(ctx):
            a = CounterNonces(ctx.rank)
            b = make_nonce_source("counter", ctx.rank)
            return a, b
    """) == []


# ---------------------------------------------------------------- CRY003

def test_cry003_key_constant_fires():
    assert ids("""
        SESSION_KEY = b"k" * 32
    """) == ["CRY003"]


def test_cry003_literal_ctor_key_fires():
    assert ids("""
        def make(backend):
            return get_aead(b"\\x01" * 32, backend)
    """) == ["CRY003"]


def test_cry003_short_constant_clean():
    # below AES-128 key size: not key material
    assert ids("""
        KEY_TAG = b"hdr"
    """) == []


def test_cry003_name_bound_key_clean_at_callsite():
    found = findings("""
        def make(key, backend):
            return get_aead(key, backend)
    """)
    assert found == []


# ----------------------------------------------------------------- misc

def test_syntax_error_becomes_finding():
    found = lint_source("def broken(:\n", "<fixture>")
    assert [f.rule for f in found] == ["E999"]
    assert found[0].severity == "error"


def test_every_rule_has_a_fixture_here():
    # module-scope (linter) rules are exercised in this file; the
    # program-scope verifier rules have their fixtures in
    # test_dataflow.py / test_taint.py
    covered = {"MPI001", "MPI002", "MPI003", "MPI004", "MPI005",
               "DET001", "DET002", "DET003", "DET004",
               "CRY001", "CRY002", "CRY003"}
    verifier = {"MPI101", "MPI102", "MPI103", "MPI104", "MPI105",
                "CRY101", "CRY102", "CRY103"}
    assert {r.id for r in all_rules() if r.scope == "module"} == covered
    assert {r.id for r in all_rules() if r.scope == "program"} \
        == verifier
