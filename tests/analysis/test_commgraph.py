"""The symbolic comm-graph layer: template fitting and rendering."""

from repro.analysis.commgraph import RANK, WORLD, SymExpr, fit_symbolic


def fit(samples):
    expr = fit_symbolic(samples)
    return None if expr is None else str(expr)


def test_fit_constant():
    assert fit([(0, 4, 7), (1, 4, 7), (2, 4, 7), (3, 4, 7)]) == "7"


def test_fit_rank_plus_const():
    assert fit([(0, 4, 1), (1, 4, 2), (2, 4, 3)]) == "rank + 1"


def test_fit_identity_rank():
    assert fit([(0, 4, 0), (1, 4, 1), (2, 4, 2)]) == "rank"


def test_fit_const_minus_rank():
    # the two-rank partner pattern: peer = 1 - rank
    assert fit([(0, 2, 1), (1, 2, 0)]) == "1 - rank"


def test_fit_mirror():
    assert fit([(0, 4, 3), (1, 4, 2), (2, 4, 1), (3, 4, 0)]) \
        in ("n - 1 - rank", "(n - 1) - rank", "3 - rank")


def test_fit_ring_neighbor():
    samples = [(0, 4, 1), (1, 4, 2), (2, 4, 3), (3, 4, 0)]
    assert fit(samples) == "(rank + 1) % n"


def test_fit_half_shift():
    samples = [(0, 4, 2), (1, 4, 3), (2, 4, 0), (3, 4, 1)]
    rendered = fit(samples)
    assert rendered in ("(rank + (n // 2)) % n", "(rank + 2) % n")


def test_fit_xor_partner():
    samples = [(0, 4, 1), (1, 4, 0), (2, 4, 3), (3, 4, 2)]
    assert fit(samples) == "rank ^ 1"


def test_fit_rejects_inconsistent():
    assert fit_symbolic([(0, 4, 1), (1, 4, 1), (2, 4, 99)]) is None


def test_fit_needs_two_samples():
    assert fit_symbolic([(0, 2, 1)]) is None
    assert fit_symbolic([]) is None


def test_fit_evaluates_back():
    expr = fit_symbolic([(0, 4, 1), (1, 4, 2), (2, 4, 3), (3, 4, 0)])
    for rank in range(4):
        assert expr.subst({"rank": rank, "n": 4}) == (rank + 1) % 4


def test_symexpr_variables():
    assert RANK.variables() == {"rank"}
    assert WORLD.variables() == {"n"}
    assert SymExpr.const(5).variables() == set()
