"""The ``# lint-ok`` suppression grammar."""

import textwrap

from repro.analysis import lint_source


def ids(source: str) -> list[str]:
    return [f.rule for f in lint_source(textwrap.dedent(source), "<fx>")]


BASE = """
    def step(ctx):
        ctx.comm.send(b"x", 1, 42)
"""


def test_unsuppressed_baseline_fires():
    assert ids(BASE) == ["MPI002"]


def test_same_line_suppression():
    assert ids("""
        def step(ctx):
            ctx.comm.send(b"x", 1, 42)  # lint-ok: MPI002
    """) == []


def test_preceding_comment_line_suppression():
    assert ids("""
        def step(ctx):
            # lint-ok: MPI002
            ctx.comm.send(b"x", 1, 42)
    """) == []


def test_bare_lint_ok_suppresses_everything_on_the_line():
    assert ids("""
        import random

        def step(ctx):
            ctx.comm.send(b"x", 1, random.randint(0, 42))  # lint-ok
    """) == []


def test_multiple_ids_comma_separated():
    assert ids("""
        import random

        def step(ctx):
            # lint-ok: MPI002, DET002
            ctx.comm.send(b"x", 1, random.randint(0, 42))
    """) == []


def test_wrong_id_does_not_suppress():
    assert ids("""
        def step(ctx):
            ctx.comm.send(b"x", 1, 42)  # lint-ok: DET001
    """) == ["MPI002"]


def test_file_level_suppression():
    assert ids("""
        # lint-ok-file: MPI002

        def step(ctx):
            ctx.comm.send(b"x", 1, 42)
            ctx.comm.send(b"y", 1, 43)
    """) == []


def test_file_level_only_covers_named_ids():
    assert ids("""
        # lint-ok-file: MPI002
        import time

        def step(ctx):
            ctx.comm.send(b"x", 1, 42)
            return time.time()
    """) == ["DET001"]


def test_trailing_justification_after_dash():
    assert ids("""
        def step(ctx):
            ctx.comm.send(b"x", 1, 42)  # lint-ok: MPI002 — probe channel
    """) == []


def test_suppression_does_not_leak_to_other_lines():
    assert ids("""
        def step(ctx):
            ctx.comm.send(b"x", 1, 42)  # lint-ok: MPI002
            ctx.comm.send(b"y", 1, 43)
    """) == ["MPI002"]


# ---------------------------------------------------- edge cases

def test_decorated_function_preceding_comment():
    # the suppression comment rides the call line, not the decorator
    assert ids("""
        import functools

        def wrap(fn):
            return fn

        @wrap
        def step(ctx):
            # lint-ok: MPI002
            ctx.comm.send(b"x", 1, 42)
    """) == []


def test_comment_above_decorator_does_not_reach_body():
    assert ids("""
        def wrap(fn):
            return fn

        # lint-ok: MPI002
        @wrap
        def step(ctx):
            ctx.comm.send(b"x", 1, 42)
    """) == ["MPI002"]


def test_mixed_known_and_unknown_ids():
    # an unknown id in the list neither errors nor disables the known one
    assert ids("""
        def step(ctx):
            ctx.comm.send(b"x", 1, 42)  # lint-ok: MPI002, NOPE999
    """) == []


def test_unknown_id_alone_suppresses_nothing():
    assert ids("""
        def step(ctx):
            ctx.comm.send(b"x", 1, 42)  # lint-ok: NOPE999
    """) == ["MPI002"]


# ------------------------------- verifier rules share the grammar

def verify_ids(source: str) -> list[str]:
    from repro.analysis import verify_source

    result = verify_source(textwrap.dedent(source), "<fx>", sizes=(2,))
    return sorted({f.rule for f in result.findings})


MISMATCH = """
    # verify-sizes: 2

    def step(ctx):
        if ctx.rank == 0:
            ctx.comm.send(b"x", 1, tag=5)
        else:
            data, _st = ctx.comm.recv(0, 6)
"""


def test_verifier_finding_unsuppressed_baseline():
    found = verify_ids(MISMATCH)
    assert "MPI101" in found


def test_line_suppression_covers_verifier_rules():
    assert verify_ids("""
        # verify-sizes: 2

        def step(ctx):
            if ctx.rank == 0:
                ctx.comm.send(b"x", 1, tag=5)  # lint-ok: MPI101
            else:
                data, _st = ctx.comm.recv(0, 6)  # lint-ok: MPI102
    """) == []


def test_file_level_suppression_covers_verifier_rules():
    assert verify_ids("""
        # lint-ok-file: MPI101, MPI102
        # verify-sizes: 2

        def step(ctx):
            if ctx.rank == 0:
                ctx.comm.send(b"x", 1, tag=5)
            else:
                data, _st = ctx.comm.recv(0, 6)
    """) == []


def test_file_level_crypto_taint_suppression():
    assert verify_ids("""
        # lint-ok-file: CRY101

        def step(ctx):
            key = b"k" * 32
            print("debug", key)
    """) == []
    assert verify_ids("""
        def step(ctx):
            key = b"k" * 32
            print("debug", key)
    """) == ["CRY101"]
