"""The ``# lint-ok`` suppression grammar."""

import textwrap

from repro.analysis import lint_source


def ids(source: str) -> list[str]:
    return [f.rule for f in lint_source(textwrap.dedent(source), "<fx>")]


BASE = """
    def step(ctx):
        ctx.comm.send(b"x", 1, 42)
"""


def test_unsuppressed_baseline_fires():
    assert ids(BASE) == ["MPI002"]


def test_same_line_suppression():
    assert ids("""
        def step(ctx):
            ctx.comm.send(b"x", 1, 42)  # lint-ok: MPI002
    """) == []


def test_preceding_comment_line_suppression():
    assert ids("""
        def step(ctx):
            # lint-ok: MPI002
            ctx.comm.send(b"x", 1, 42)
    """) == []


def test_bare_lint_ok_suppresses_everything_on_the_line():
    assert ids("""
        import random

        def step(ctx):
            ctx.comm.send(b"x", 1, random.randint(0, 42))  # lint-ok
    """) == []


def test_multiple_ids_comma_separated():
    assert ids("""
        import random

        def step(ctx):
            # lint-ok: MPI002, DET002
            ctx.comm.send(b"x", 1, random.randint(0, 42))
    """) == []


def test_wrong_id_does_not_suppress():
    assert ids("""
        def step(ctx):
            ctx.comm.send(b"x", 1, 42)  # lint-ok: DET001
    """) == ["MPI002"]


def test_file_level_suppression():
    assert ids("""
        # lint-ok-file: MPI002

        def step(ctx):
            ctx.comm.send(b"x", 1, 42)
            ctx.comm.send(b"y", 1, 43)
    """) == []


def test_file_level_only_covers_named_ids():
    assert ids("""
        # lint-ok-file: MPI002
        import time

        def step(ctx):
            ctx.comm.send(b"x", 1, 42)
            return time.time()
    """) == ["DET001"]


def test_trailing_justification_after_dash():
    assert ids("""
        def step(ctx):
            ctx.comm.send(b"x", 1, 42)  # lint-ok: MPI002 — probe channel
    """) == []


def test_suppression_does_not_leak_to_other_lines():
    assert ids("""
        def step(ctx):
            ctx.comm.send(b"x", 1, 42)  # lint-ok: MPI002
            ctx.comm.send(b"y", 1, 43)
    """) == ["MPI002"]
