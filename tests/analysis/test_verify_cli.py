"""The ``verify`` / ``conformance`` subcommands and the ``lint``
``--fix`` / ``--baseline`` flags."""

import json

import pytest

from repro.analysis.cli import main

MISMATCH = """\
# verify-sizes: 2


def step(ctx):
    if ctx.rank == 0:
        ctx.comm.send(b"x", 1, tag=5)
    else:
        data, _st = ctx.comm.recv(0, 6)
"""

CLEAN = """\
# verify-sizes: 2
TAG_DATA = 7


def step(ctx):
    if ctx.rank == 0:
        ctx.comm.send(b"x", 1, tag=TAG_DATA)
    else:
        data, _st = ctx.comm.recv(0, TAG_DATA)
"""

FIXABLE = """\
import random


def step(ctx):
    if ctx.rank == 0:
        ctx.comm.send(b"x", 1, tag=21)
        jitter = random.random()
    else:
        data, _st = ctx.comm.recv(0, 21)
"""


@pytest.fixture()
def tree(tmp_path):
    (tmp_path / "mismatch.py").write_text(MISMATCH)
    (tmp_path / "clean.py").write_text(CLEAN)
    return tmp_path


# ------------------------------------------------------------- verify

def test_verify_clean_exits_zero(tree, capsys):
    assert main(["verify", str(tree / "clean.py")]) == 0
    assert "clean: no findings" in capsys.readouterr().out


def test_verify_mismatch_exits_one(tree, capsys):
    assert main(["verify", str(tree / "mismatch.py")]) == 1
    out = capsys.readouterr().out
    assert "MPI101" in out and "MPI102" in out


def test_verify_json(tree, capsys):
    assert main(["verify", "--json", str(tree / "mismatch.py")]) == 1
    doc = json.loads(capsys.readouterr().out)
    rules = {f["rule"] for f in doc["findings"]}
    assert "MPI101" in rules
    assert doc["programs"] >= 1


def test_verify_bad_sizes_usage_error(tree, capsys):
    assert main(["verify", "--sizes", "banana",
                 str(tree / "clean.py")]) == 2
    assert main(["verify", "--sizes", "1",
                 str(tree / "clean.py")]) == 2


def test_verify_write_then_apply_baseline(tree, capsys):
    baseline = tree / "baseline.json"
    # record the debt...
    assert main(["verify", "--write-baseline", str(baseline),
                 str(tree / "mismatch.py")]) == 1
    capsys.readouterr()
    # ...and the same findings are now forgiven
    assert main(["verify", "--baseline", str(baseline),
                 str(tree / "mismatch.py")]) == 0
    assert "clean: no findings" in capsys.readouterr().out


def test_verify_baseline_still_fails_on_new_findings(tree, capsys):
    baseline = tree / "baseline.json"
    assert main(["verify", "--write-baseline", str(baseline),
                 str(tree / "clean.py")]) == 0
    capsys.readouterr()
    assert main(["verify", "--baseline", str(baseline),
                 str(tree / "mismatch.py")]) == 1


def test_verify_missing_baseline_usage_error(tree, capsys):
    assert main(["verify", "--baseline", str(tree / "nope.json"),
                 str(tree / "clean.py")]) == 2


# --------------------------------------------------------- lint --fix

def test_lint_fix_rewrites_then_relints_clean(tree, capsys):
    target = tree / "fixable.py"
    target.write_text(FIXABLE)
    assert main(["lint", str(target)]) == 1
    capsys.readouterr()
    assert main(["lint", "--fix", str(target)]) == 0
    out = capsys.readouterr().out
    assert "fixed" in out and "clean: no findings" in out
    fixed = target.read_text()
    assert "TAG_AUTO_21" in fixed
    assert "random.Random(ctx.rank).random()" in fixed
    # a second --fix run is a no-op
    assert main(["lint", "--fix", str(target)]) == 0
    assert target.read_text() == fixed


def test_lint_baseline_flag(tree, capsys):
    target = tree / "fixable.py"
    target.write_text(FIXABLE)
    baseline = tree / "baseline.json"
    from repro.analysis.baseline import write_baseline
    from repro.analysis.linter import lint_paths

    write_baseline(lint_paths([str(target)]), str(baseline))
    assert main(["lint", "--baseline", str(baseline),
                 str(target)]) == 0


# -------------------------------------------------------- conformance

def test_conformance_unknown_golden_usage_error(capsys):
    assert main(["conformance", "definitely-not-a-golden"]) == 2


def test_conformance_pingpong_ok(capsys):
    assert main(["conformance", "pingpong"]) == 0
    out = capsys.readouterr().out
    assert "conformance pingpong" in out and "[ok]" in out


def test_conformance_json(capsys):
    assert main(["conformance", "--json", "pingpong"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["ok"] is True
    assert doc["goldens"][0]["name"] == "pingpong"
    assert doc["goldens"][0]["unexplained_dynamic"] == []


# -------------------------------------------------------------- rules

def test_rules_lists_verifier_scope(capsys):
    assert main(["rules"]) == 0
    out = capsys.readouterr().out
    assert "MPI104" in out and "/verify]" in out
    assert "MPI001" in out and "/lint]" in out
