"""The ``python -m repro.analysis`` command line."""

import json

import pytest

from repro.analysis.cli import main

BAD = """\
import time


def step(ctx):
    ctx.comm.send(b"x", 1, 42)
    return time.time()
"""

CLEAN = """\
TAG_DATA = 7


def step(ctx):
    ctx.comm.send(b"x", 1, TAG_DATA)
    return ctx.now
"""


@pytest.fixture()
def tree(tmp_path):
    (tmp_path / "bad.py").write_text(BAD)
    (tmp_path / "clean.py").write_text(CLEAN)
    return tmp_path


def test_clean_file_exits_zero(tree, capsys):
    assert main(["lint", str(tree / "clean.py")]) == 0
    assert "clean: no findings" in capsys.readouterr().out


def test_findings_exit_one_with_summary(tree, capsys):
    assert main(["lint", str(tree / "bad.py")]) == 1
    out = capsys.readouterr().out
    assert "MPI002" in out and "DET001" in out
    assert "2 finding(s): 1 error(s), 1 warning(s)" in out


def test_directory_walk_is_sorted(tree, capsys):
    (tree / "zbad.py").write_text(BAD)
    assert main(["lint", str(tree)]) == 1
    out = capsys.readouterr().out
    assert out.index("bad.py") < out.index("zbad.py")
    assert "clean.py" not in out


def test_json_output_is_machine_readable(tree, capsys):
    assert main(["lint", "--json", str(tree / "bad.py")]) == 1
    doc = json.loads(capsys.readouterr().out)
    assert sorted(f["rule"] for f in doc["findings"]) == ["DET001", "MPI002"]
    assert doc["counts"] == {"error": 1, "warning": 1}
    for f in doc["findings"]:
        assert {"rule", "severity", "path", "line", "col",
                "message"} <= set(f)


def test_select_filters_rules(tree, capsys):
    assert main(["lint", "--select", "DET001", str(tree / "bad.py")]) == 1
    out = capsys.readouterr().out
    assert "DET001" in out and "MPI002" not in out


def test_select_unknown_rule_is_usage_error(tree, capsys):
    assert main(["lint", "--select", "NOPE01", str(tree)]) == 2
    assert "NOPE01" in capsys.readouterr().err


def test_rules_subcommand_lists_catalog(capsys):
    assert main(["rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("MPI001", "MPI002", "MPI003", "MPI004", "DET001",
                    "DET002", "DET003", "DET004", "CRY001", "CRY002",
                    "CRY003"):
        assert rule_id in out


def test_rules_json(capsys):
    assert main(["rules", "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert {r["id"] for r in doc["rules"]} >= {"MPI001", "CRY003"}
    for r in doc["rules"]:
        assert r["summary"] and r["severity"] in ("error", "warning")
