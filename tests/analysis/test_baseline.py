"""The findings baseline ratchet (``--baseline``)."""

import json

import pytest

from repro.analysis.baseline import (
    filter_new,
    load_baseline,
    render_baseline,
    write_baseline,
)
from repro.analysis.findings import Finding


def finding(rule="MPI002", path="a.py", line=3, message="m") -> Finding:
    return Finding(rule=rule, severity="warning", path=path, line=line,
                   col=0, message=message)


def test_roundtrip(tmp_path):
    target = tmp_path / "baseline.json"
    count = write_baseline([finding(), finding(line=9)], str(target))
    assert count == 1  # same (path, rule, message) key, count 2
    baseline = load_baseline(str(target))
    assert baseline[("a.py", "MPI002", "m")] == 2


def test_baselined_findings_forgiven():
    baseline = load_baseline_from([finding()])
    assert filter_new([finding(line=99)], baseline) == []


def test_new_rule_not_forgiven():
    baseline = load_baseline_from([finding()])
    new = finding(rule="CRY101")
    assert filter_new([finding(), new], baseline) == [new]


def test_excess_count_not_forgiven():
    baseline = load_baseline_from([finding()])
    first, second = finding(line=1), finding(line=2)
    assert filter_new([first, second], baseline) == [second]


def test_line_moves_do_not_resurrect():
    # keys ignore line numbers: shifting code above a baselined finding
    # must not break the build
    baseline = load_baseline_from([finding(line=10)])
    assert filter_new([finding(line=400)], baseline) == []


def test_fixed_finding_leaves_stale_entry_harmless():
    baseline = load_baseline_from([finding(), finding(rule="DET002")])
    assert filter_new([finding()], baseline) == []


def test_render_is_deterministic_and_sorted():
    findings = [finding(path="z.py"), finding(path="a.py"),
                finding(rule="CRY101", path="a.py")]
    text = render_baseline(findings)
    assert text == render_baseline(list(reversed(findings)))
    entries = json.loads(text)["findings"]
    assert entries == sorted(
        entries, key=lambda e: (e["path"], e["rule"], e["message"]))


def test_wrong_schema_rejected(tmp_path):
    target = tmp_path / "bad.json"
    target.write_text(json.dumps({"schema": 99, "findings": []}))
    with pytest.raises(ValueError):
        load_baseline(str(target))


def test_committed_baseline_is_loadable_and_clean():
    # the repo's committed baseline must stay parseable; it is empty
    # because the tree verifies clean (new debt needs a justification)
    baseline = load_baseline("lint-baseline.json")
    assert sum(baseline.values()) == 0


def load_baseline_from(findings):
    import tempfile, os

    fd, path = tempfile.mkstemp(suffix=".json")
    os.close(fd)
    try:
        write_baseline(findings, path)
        return load_baseline(path)
    finally:
        os.unlink(path)
