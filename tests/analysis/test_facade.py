"""api.lint_job, lint_callable anchoring, and the acceptance guarantee
that the repo's own workloads and examples lint clean."""

import pytest

from repro import api
from repro.analysis import lint_callable, lint_paths

TAG_DATA = 9


def clean_workload(ctx):
    ctx.comm.send(b"x", 1 - ctx.rank, TAG_DATA)
    data, _ = ctx.comm.recv(1 - ctx.rank, TAG_DATA)
    return data


def dirty_workload(ctx):
    import random

    ctx.comm.send(b"x", 1, 42)
    return random.random()


def test_lint_job_clean_function():
    assert api.lint_job(clean_workload) == []


def test_lint_job_reports_rule_ids():
    found = api.lint_job(dirty_workload)
    assert sorted(f.rule for f in found) == ["DET002", "MPI002"]


def test_lint_job_anchors_lines_to_this_file():
    found = api.lint_job(dirty_workload)
    import inspect

    _, start = inspect.getsourcelines(dirty_workload)
    for f in found:
        assert f.path == f"<{__name__}.dirty_workload>"
        assert start < f.line < start + 10


def test_lint_callable_forces_rank_scope():
    # the parameter name doesn't matter for a job function
    def job(anything):
        anything.comm.send(b"x", 1, 42)

    assert [f.rule for f in lint_callable(job)] == ["MPI002"]


def test_lint_callable_without_source_raises_value_error():
    namespace: dict = {}
    exec("def ghost(ctx):\n    pass\n", namespace)
    with pytest.raises(ValueError, match="source is not retrievable"):
        lint_callable(namespace["ghost"])


# ------------------------------------------------------------ acceptance

def test_own_workloads_and_examples_lint_clean():
    # the ISSUE acceptance command:
    #   python -m repro.analysis lint src/repro/workloads examples
    found = lint_paths(["src/repro/workloads", "examples"])
    assert found == [], "\n".join(f.format() for f in found)


def test_entire_source_tree_lints_clean():
    found = lint_paths(["src/repro"])
    assert found == [], "\n".join(f.format() for f in found)
