"""``lint --fix``: mechanical rewrites for MPI002 and DET002.

The contract is *fix-then-relint-clean* and *idempotent*: fixed source
must not re-fire the fixed rules, and fixing already-fixed source must
change nothing.
"""

import textwrap

from repro.analysis.autofix import fix_source
from repro.analysis.linter import lint_source


def fix(source: str):
    return fix_source(textwrap.dedent(source), "<fx>")


def fixable_ids(source: str) -> list[str]:
    return [f.rule for f in lint_source(source, "<fx>")
            if f.rule in ("MPI002", "DET002")]


def test_magic_tag_reuses_existing_constant():
    fixed, count = fix("""
        TAG_HALO = 7

        def step(ctx):
            ctx.comm.send(b"x", 1, tag=7)
    """)
    assert count == 1
    assert "tag=TAG_HALO" in fixed
    assert "TAG_AUTO" not in fixed


def test_magic_tag_mints_new_constant_after_imports():
    fixed, count = fix("""
        \"\"\"doc.\"\"\"
        import os

        def step(ctx):
            ctx.comm.send(b"x", 1, tag=21)
    """)
    assert count == 1
    lines = fixed.splitlines()
    assert "TAG_AUTO_21 = 21" in lines
    assert lines.index("TAG_AUTO_21 = 21") > lines.index("import os")
    assert "tag=TAG_AUTO_21" in fixed


def test_same_value_tags_share_one_minted_constant():
    fixed, count = fix("""
        def step(ctx):
            ctx.comm.send(b"x", 1, tag=21)
            ctx.comm.isend(b"y", 1, 21)
    """)
    assert count == 2
    assert fixed.count("TAG_AUTO_21 = 21") == 1


def test_positional_and_sendrecv_tags_fixed():
    fixed, count = fix("""
        def step(ctx):
            ctx.comm.recv(0, 9)
            ctx.comm.sendrecv(b"x", 1, 1, 9, 9)
    """)
    assert count == 3
    assert "ctx.comm.recv(0, TAG_AUTO_9)" in fixed


def test_tag_zero_untouched():
    src = textwrap.dedent("""
        def step(ctx):
            ctx.comm.send(b"x", 1, tag=0)
    """)
    fixed, count = fix_source(src, "<fx>")
    assert count == 0 and fixed == src


def test_unseeded_random_seeded_with_ctx_rank():
    fixed, count = fix("""
        import random

        def step(ctx):
            return random.random() + random.randint(0, 9)
    """)
    assert count == 2
    assert fixed.count("random.Random(ctx.rank).") == 2


def test_unseeded_random_uses_comm_param_name():
    fixed, count = fix("""
        import random

        def step(comm):
            return random.random()
    """)
    assert count == 1
    assert "random.Random(comm.rank).random()" in fixed


def test_seeded_random_untouched():
    src = textwrap.dedent("""
        import random

        def step(ctx):
            rng = random.Random(ctx.rank)
            return rng.random()
    """)
    fixed, count = fix_source(src, "<fx>")
    assert count == 0 and fixed == src


def test_fix_then_relint_clean():
    src = textwrap.dedent("""
        import random

        TAG_HALO = 7

        def step(ctx):
            if ctx.rank == 0:
                ctx.comm.send(b"x", 1, tag=7)
                ctx.comm.send(b"y", 1, tag=21)
                jitter = random.random()
            else:
                ctx.comm.recv(0, 7)
    """)
    assert fixable_ids(src)  # the seed source does fire
    fixed, count = fix_source(src, "<fx>")
    assert count == 4
    assert fixable_ids(fixed) == []


def test_fix_is_idempotent():
    src = textwrap.dedent("""
        import random

        def step(ctx):
            ctx.comm.send(b"x", 1, tag=21)
            return random.random()
    """)
    once, n1 = fix_source(src, "<fx>")
    twice, n2 = fix_source(once, "<fx>")
    assert n1 == 2 and n2 == 0
    assert twice == once


def test_syntax_error_left_alone():
    src = "def step(ctx:\n    pass\n"
    fixed, count = fix_source(src, "<fx>")
    assert count == 0 and fixed == src


def test_fixed_source_still_parses_and_preserves_other_lines():
    import ast

    src = textwrap.dedent("""
        import random

        def step(ctx):
            total = 1 + 2  # arithmetic untouched
            ctx.comm.send(b"x", 1, tag=21)
            return total + random.random()
    """)
    fixed, _count = fix_source(src, "<fx>")
    ast.parse(fixed)
    assert "total = 1 + 2  # arithmetic untouched" in fixed
