"""The flow-sensitive verifier: seeded-mutation detection and
soundness posture.

Each mutation test plants one specific bug in an otherwise-clean rank
program and asserts the verifier reports exactly the expected rule —
the acceptance gate of the static-analysis PR: a verifier that stays
silent on known-bad programs proves nothing by staying silent on good
ones.
"""

import textwrap

from repro.analysis import verify_source


def findings(source: str, *, sizes=(2,)):
    result = verify_source(textwrap.dedent(source), "<fx>", sizes=sizes)
    return result.findings


def rule_ids(source: str, *, sizes=(2,)) -> list[str]:
    return sorted({f.rule for f in findings(source, sizes=sizes)})


# ------------------------------------------------------------ clean

CLEAN_EXCHANGE = """
    # verify-sizes: 2
    TAG = 5

    def step(ctx):
        if ctx.rank == 0:
            ctx.comm.send(b"x" * 64, 1, tag=TAG)
            data, _st = ctx.comm.recv(1, TAG)
        else:
            data, _st = ctx.comm.recv(0, TAG)
            ctx.comm.send(b"y" * 64, 0, tag=TAG)
"""


def test_clean_exchange_verifies_clean():
    assert rule_ids(CLEAN_EXCHANGE) == []


def test_clean_ring_verifies_at_both_sizes():
    assert rule_ids("""
        def step(ctx):
            right = (ctx.rank + 1) % ctx.size
            left = (ctx.rank - 1) % ctx.size
            ctx.comm.isend(b"h" * 32, right, 7)
            data, _st = ctx.comm.recv(left, 7)
    """, sizes=(2, 4)) == []


# -------------------------------------------------- seeded mutations

def test_swapped_recv_tag_detected():
    # receiver listens on tag 6 for a tag-5 send: the send is never
    # received and the recv never completes
    found = rule_ids("""
        # verify-sizes: 2

        def step(ctx):
            if ctx.rank == 0:
                ctx.comm.send(b"x", 1, tag=5)
            else:
                data, _st = ctx.comm.recv(0, 6)
    """)
    assert "MPI101" in found and "MPI102" in found


def test_wrong_peer_detected():
    found = rule_ids("""
        def step(ctx):
            if ctx.rank == 0:
                ctx.comm.send(b"x", 1, tag=5)
                ctx.comm.send(b"x", 1, tag=5)
            elif ctx.rank == 1:
                data, _st = ctx.comm.recv(0, 5)
            else:
                data, _st = ctx.comm.recv(0, 5)
    """, sizes=(4,))
    assert "MPI102" in found  # ranks 2,3 wait for sends that never come


def test_reordered_collective_detected():
    found = findings("""
        def step(ctx):
            if ctx.rank == 0:
                ctx.comm.barrier()
                ctx.comm.allgather(ctx.rank)
            else:
                ctx.comm.allgather(ctx.rank)
                ctx.comm.barrier()
    """)
    assert {f.rule for f in found} == {"MPI103"}


def test_recv_before_send_cycle_named_like_sanitizer():
    found = findings("""
        # verify-sizes: 2

        def step(ctx):
            peer = 1 - ctx.rank
            data, _st = ctx.comm.recv(peer, 5)
            ctx.comm.send(b"x", peer, tag=5)
    """)
    assert "MPI104" in {f.rule for f in found}
    cycle = next(f for f in found if f.rule == "MPI104")
    # same naming scheme as the runtime sanitizer's DeadlockDiagnosis
    assert "static wait-for cycle rank 0 -> rank 1 -> rank 0" \
        in cycle.message
    assert "rank 0 waiting on recv(from rank 1" in cycle.message


def test_reserved_tag_range_detected():
    found = rule_ids("""
        # verify-sizes: 2

        def step(ctx):
            tag = 1 << 21
            if ctx.rank == 0:
                ctx.comm.send(b"x", 1, tag=tag)
            else:
                data, _st = ctx.comm.recv(0, tag)
    """)
    assert "MPI105" in found


# ------------------------------------------------- soundness posture

def test_unknown_branch_degrades_not_diagnoses():
    # an unresolvable condition must degrade to "incomplete", never
    # fabricate a deadlock/match finding
    assert rule_ids("""
        import os

        def step(ctx):
            if os.environ.get("MODE") == "chatty":
                ctx.comm.send(b"x", (ctx.rank + 1) % ctx.size, tag=5)
            ctx.comm.barrier()
    """) == []


def test_explicit_raise_marks_inapplicable():
    assert rule_ids("""
        def step(ctx):
            if ctx.size != 3:
                raise ValueError("needs exactly 3 ranks")
            ctx.comm.send(b"x", (ctx.rank + 1) % 3, tag=5)
    """, sizes=(2, 4)) == []


def test_verify_sizes_pragma_pins_world_sizes():
    # without the pragma this 2-rank program strands ranks 2..3 at n=4
    two_rank = """
        def step(ctx):
            if ctx.rank == 0:
                ctx.comm.send(b"x", 1, tag=5)
            elif ctx.rank == 1:
                data, _st = ctx.comm.recv(0, 5)
    """
    assert rule_ids(two_rank, sizes=(2,)) == []
    pinned = "# verify-sizes: 2\n" + textwrap.dedent(two_rank)
    assert rule_ids(pinned, sizes=(2, 4)) == []


def test_syntax_error_reports_e999():
    assert rule_ids("def step(ctx:\n    pass\n") == ["E999"]


def test_symbolic_peer_reported_in_finding():
    # the per-rank concrete runs are fitted back to a rank expression
    # for reporting
    found = findings("""
        def step(ctx):
            ctx.comm.isend(b"x", (ctx.rank + 1) % ctx.size, 5)
            # no matching recv anywhere
    """, sizes=(4,))
    assert any(f.rule == "MPI101" and "rank" in f.message
               for f in found)


def test_findings_deduplicated_across_sizes():
    found = findings("""
        def step(ctx):
            if ctx.rank == 0:
                ctx.comm.send(b"x", 1, tag=5)
            else:
                data, _st = ctx.comm.recv(0, 6)
    """, sizes=(2,))
    mpi101 = [f for f in found if f.rule == "MPI101"]
    assert len(mpi101) == len({(f.path, f.line) for f in mpi101})
