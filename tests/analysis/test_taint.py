"""Crypto-hygiene taint rules (CRY1xx) through the verifier."""

import textwrap

from repro.analysis import verify_source


def rule_ids(source: str, *, sizes=(2,)) -> list[str]:
    result = verify_source(textwrap.dedent(source), "<fx>", sizes=sizes)
    return sorted({f.rule for f in result.findings})


# --------------------------------------------------- CRY101: key->sink

def test_key_to_print_detected():
    assert "CRY101" in rule_ids("""
        def step(ctx):
            key = b"k" * 32
            print("session key is", key)
    """)


def test_key_to_recorder_detected():
    assert "CRY101" in rule_ids("""
        def step(ctx):
            secret_key = b"k" * 32
            ctx.recorder.emit("debug", "keys", material=secret_key)
    """)


def test_key_length_logging_is_clean():
    # logging a value derived only by len() carries no taint
    assert rule_ids("""
        def step(ctx):
            key = b"k" * 32
            print("key length", len(key))
    """) == []


def test_public_key_name_exempt():
    assert rule_ids("""
        def step(ctx):
            public_key = b"p" * 32
            print("peer public key", public_key)
    """) == []


# ------------------------------------------- CRY102: secret->plain wire

def test_secret_to_plain_wire_detected():
    assert "CRY102" in rule_ids("""
        # verify-sizes: 2

        def step(ctx):
            secret = b"s" * 64
            if ctx.rank == 0:
                ctx.comm.send(secret, 1, tag=5)
            else:
                data, _st = ctx.comm.recv(0, 5)
    """)


def test_secret_over_encrypted_channel_clean():
    assert rule_ids("""
        # verify-sizes: 2

        def step(ctx):
            secret = b"s" * 64
            if ctx.rank == 0:
                ctx.enc.send(secret, 1, tag=5)
            else:
                data, _st = ctx.enc.recv(0, 5)
    """) == []


def test_nonsecret_plain_send_clean():
    assert rule_ids("""
        # verify-sizes: 2

        def step(ctx):
            payload = b"p" * 64
            if ctx.rank == 0:
                ctx.comm.send(payload, 1, tag=5)
            else:
                data, _st = ctx.comm.recv(0, 5)
    """) == []


# ------------------------------------------- CRY103: nonce uniqueness

def test_shared_counter_nonces_collide_across_ranks():
    assert "CRY103" in rule_ids("""
        from repro.crypto.aead import get_aead
        from repro.crypto.nonces import CounterNonces

        def step(ctx):
            aead = get_aead(b"k" * 32)
            nonces = CounterNonces(0)  # same stream on every rank
            frame = aead.seal(nonces.next(), b"x" * 64, b"")
    """)


def test_rank_prefixed_counter_nonces_clean():
    assert rule_ids("""
        from repro.crypto.aead import get_aead
        from repro.crypto.nonces import CounterNonces

        def step(ctx):
            aead = get_aead(b"k" * 32)
            nonces = CounterNonces(ctx.rank)
            frame = aead.seal(nonces.next(), b"x" * 64, b"")
    """) == []


def test_constant_nonce_in_loop_detected():
    assert "CRY103" in rule_ids("""
        from repro.crypto.aead import get_aead

        def step(ctx):
            aead = get_aead(b"k" * 32)
            for i in range(4):
                frame = aead.seal(bytes(12), b"x" * 64, b"")
    """)
