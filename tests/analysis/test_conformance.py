"""Static-vs-dynamic conformance over the fast-tier goldens."""

from collections import Counter

import pytest

from repro.analysis.conformance import (
    FAST_GOLDENS,
    ConformanceReport,
    check_golden,
    conformance_report,
)


@pytest.mark.parametrize("name", FAST_GOLDENS)
def test_fast_golden_conforms(name):
    report = check_golden(name)
    assert report.ok, report.format()
    assert report.unexplained_dynamic == []
    assert report.collective_agreement


def test_pingpong_predicts_every_user_message():
    report = check_golden("pingpong")
    assert sum(report.predicted_sends.values()) \
        == sum(report.dynamic_matches.values()) == 6
    assert report.unrealized_static == []


def test_collective_traffic_explained_not_diffed():
    report = check_golden("bcast")
    # bcast carries no user-tag p2p; the transport-level fan-out rides
    # internal tags and is explained by the predicted collectives
    assert sum(report.dynamic_matches.values()) == 0
    assert report.internal_matches > 0
    assert report.internal_explained


def test_report_runs_twice_byte_identical():
    assert conformance_report(["pingpong"]) \
        == conformance_report(["pingpong"])


# ------------------------------------------------- report mechanics
# (pure-unit: no golden run, exercises the diff/verdict logic)

def test_unexplained_dynamic_fails():
    report = ConformanceReport(name="x", nranks=2)
    report.dynamic_matches = Counter({(0, 1, 5): 1})
    assert report.unexplained_dynamic == [(0, 1, 5)]
    assert not report.ok
    assert "unexplained: rank 0 -> rank 1 tag 5" in report.format()


def test_unrealized_static_reported_but_not_fatal():
    report = ConformanceReport(name="x", nranks=2)
    report.predicted_sends = Counter({(0, 1, 5): 1})
    assert report.unrealized_static == [(0, 1, 5)]
    assert report.ok  # over-approximation is safe


def test_collective_divergence_fails():
    report = ConformanceReport(name="x", nranks=2)
    report.predicted_collectives = {0: ["barrier"], 1: ["barrier"]}
    report.dynamic_collectives = {0: ["barrier"], 1: ["allgather"]}
    assert not report.collective_agreement
    assert not report.ok


def test_empty_collectives_agree_regardless_of_key_presence():
    report = ConformanceReport(name="x", nranks=2)
    report.predicted_collectives = {0: [], 1: []}
    report.dynamic_collectives = {}
    assert report.collective_agreement


def test_incomplete_static_graph_fails_conformance():
    report = ConformanceReport(name="x", nranks=2)
    report.static_incomplete = True
    assert not report.ok
