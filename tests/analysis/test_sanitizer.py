"""The runtime sanitizer: deadlock diagnosis, leak tracking, nonce
reuse, and the guarantee that sanitizing never changes results.
"""

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro import api
from repro.analysis.sanitize import (
    DeadlockDiagnosis,
    SanitizerError,
    default_sanitize,
    set_default_sanitize,
)
from repro.crypto.errors import NonceReuseError
from repro.crypto.nonces import make_nonce_source
from repro.des.engine import DeadlockError
from repro.des.process import ProcessFailed

TAG_PING = 1
TAG_PONG = 2
#: generous wall-clock bound: a hung deadlock test must fail, not hang CI
TIMEOUT = 60.0


def run_with_timeout(fn, *args, **kwargs):
    """Run a job in a worker thread; a deadlock must *terminate* with a
    diagnosis, never hang the suite."""
    with ThreadPoolExecutor(max_workers=1) as pool:
        return pool.submit(fn, *args, **kwargs).result(timeout=TIMEOUT)


def pingpong(ctx):
    peer = 1 - ctx.rank
    if ctx.rank == 0:
        ctx.comm.send(b"p" * 256, peer, TAG_PING)
        data, _ = ctx.comm.recv(peer, TAG_PONG)
    else:
        data, _ = ctx.comm.recv(peer, TAG_PING)
        ctx.comm.send(b"q" * 256, peer, TAG_PONG)
    return len(data)


# ------------------------------------------------------------- clean run

def test_clean_job_reports_ok():
    result = api.run_job(pingpong, nranks=2, sanitize=True)
    assert result.results == [256, 256]
    report = result.sanitizer
    assert report is not None and report.ok
    assert report.ops_tracked == 4
    assert not report.leaked and not report.unmatched


def test_sanitize_off_by_default():
    assert api.run_job(pingpong, nranks=2).sanitizer is None


def test_sanitize_never_changes_timing_or_results():
    plain = api.run_job(pingpong, nranks=2)
    sanitized = api.run_job(pingpong, nranks=2, sanitize=True)
    assert sanitized.duration == plain.duration
    assert sanitized.results == plain.results
    assert sanitized.spans == plain.spans


def test_encrypted_job_counts_nonces():
    def enc_pingpong(ctx):
        peer = 1 - ctx.rank
        if ctx.rank == 0:
            ctx.enc.send(b"p" * 256, peer, TAG_PING)
            data, _ = ctx.enc.recv(peer, TAG_PONG)
        else:
            data, _ = ctx.enc.recv(peer, TAG_PING)
            ctx.enc.send(b"q" * 256, peer, TAG_PONG)
        return len(data)

    result = api.run_job(enc_pingpong, nranks=2,
                         security=api.SecurityConfig(), sanitize=True)
    assert result.results == [256, 256]
    assert result.sanitizer.nonces_checked == 2


# -------------------------------------------------------------- deadlock

def head_to_head_recv(ctx):
    peer = 1 - ctx.rank
    data, _ = ctx.comm.recv(peer, TAG_PING)
    ctx.comm.send(b"x", peer, TAG_PING)
    return data


def test_deadlock_diagnosis_names_both_ranks():
    with pytest.raises(DeadlockDiagnosis) as exc_info:
        run_with_timeout(
            api.run_job, head_to_head_recv, nranks=2, sanitize=True)
    diag = exc_info.value
    assert sorted(diag.cycle) == [0, 1]
    message = str(diag)
    assert "wait-for cycle" in message
    assert "rank 0 waiting on recv(from rank 1" in message
    assert "rank 1 waiting on recv(from rank 0" in message


def test_deadlock_diagnosis_is_a_deadlock_error():
    # existing handlers that catch DeadlockError keep working
    with pytest.raises(DeadlockError):
        run_with_timeout(
            api.run_job, head_to_head_recv, nranks=2, sanitize=True)


def test_unsanitized_deadlock_still_raises_plain_error():
    with pytest.raises(DeadlockError) as exc_info:
        run_with_timeout(api.run_job, head_to_head_recv, nranks=2)
    assert not isinstance(exc_info.value, DeadlockDiagnosis)


def test_rendezvous_send_send_deadlock_diagnosed():
    def head_to_head_send(ctx):
        peer = 1 - ctx.rank
        ctx.comm.send(b"s" * (1 << 20), peer, TAG_PING)
        data, _ = ctx.comm.recv(peer, TAG_PING)
        return data

    with pytest.raises(DeadlockDiagnosis) as exc_info:
        run_with_timeout(
            api.run_job, head_to_head_send, nranks=2, sanitize=True)
    message = str(exc_info.value)
    assert "send(to rank" in message and "1048576B" in message


# ----------------------------------------------------------------- leaks

def leaky_sender(ctx):
    if ctx.rank == 0:
        # rendezvous-sized isend, never waited, never received
        ctx.comm.isend(b"L" * (1 << 20), 1, TAG_PING)


def test_leaked_send_fails_the_job_with_per_rank_report():
    with pytest.raises(SanitizerError) as exc_info:
        api.run_job(leaky_sender, nranks=2, sanitize=True)
    report = exc_info.value.report
    assert not report.ok
    assert list(report.leaked) == [0]
    (desc,) = report.leaked[0]
    assert desc.startswith("send(to rank 1")
    assert "rank 0" in str(exc_info.value)


def test_unmatched_message_reported_on_receiver():
    def eager_leak(ctx):
        if ctx.rank == 0:
            # eager-sized: the send completes, the message sits
            # unmatched in rank 1's unexpected queue forever
            ctx.comm.send(b"e" * 64, 1, TAG_PING)

    with pytest.raises(SanitizerError) as exc_info:
        api.run_job(eager_leak, nranks=2, sanitize=True)
    report = exc_info.value.report
    assert not report.leaked
    assert list(report.unmatched) == [1]
    assert "tag=1" in report.unmatched[1][0]


def test_leak_free_job_passes():
    report = api.run_job(pingpong, nranks=2, sanitize=True).sanitizer
    assert report.ok


# ----------------------------------------------------------- nonce reuse

def test_rank_shared_counter_stream_raises():
    def shared_stream(ctx):
        # both ranks forced onto rank 0's counter prefix — the exact
        # §III-A violation CRY002 flags statically
        ctx.enc._nonces = make_nonce_source("counter", 0)
        peer = 1 - ctx.rank
        rreq = ctx.enc.irecv(peer, TAG_PING)
        sreq = ctx.enc.isend(b"m" * 64, peer, TAG_PING)
        rreq.wait()
        sreq.wait()

    with pytest.raises(ProcessFailed) as exc_info:
        api.run_job(shared_stream, nranks=2,
                    security=api.SecurityConfig(), sanitize=True)
    cause = exc_info.value.__cause__
    assert isinstance(cause, NonceReuseError)
    assert "rank 0" in str(cause) and "rank 1" in str(cause)


def test_distinct_streams_pass():
    def fine(ctx):
        peer = 1 - ctx.rank
        rreq = ctx.enc.irecv(peer, TAG_PING)
        sreq = ctx.enc.isend(b"m" * 64, peer, TAG_PING)
        rreq.wait()
        sreq.wait()

    report = api.run_job(fine, nranks=2, security=api.SecurityConfig(),
                         sanitize=True).sanitizer
    assert report.ok and report.nonces_checked == 2


# ------------------------------------------------- process-wide default

def test_default_sanitize_flag_round_trips():
    assert default_sanitize() is False
    prev = set_default_sanitize(True)
    try:
        assert prev is False
        assert default_sanitize() is True
        # run_job(sanitize=None) defers to the default
        assert api.run_job(pingpong, nranks=2).sanitizer is not None
    finally:
        set_default_sanitize(prev)
    assert default_sanitize() is False


def test_explicit_false_overrides_default():
    prev = set_default_sanitize(True)
    try:
        assert api.run_job(pingpong, nranks=2,
                           sanitize=False).sanitizer is None
    finally:
        set_default_sanitize(prev)


def test_campaign_sets_and_restores_default(monkeypatch):
    from repro.experiments import campaign as campaign_mod

    observed = []

    def fake_execute(exp_id):
        observed.append(default_sanitize())
        return {"ok": True, "artifact": {}, "text": "", "seconds": 0.0,
                "pid": 0}

    monkeypatch.setattr(campaign_mod, "_execute_experiment", fake_execute)
    exps = api.list_experiments()[:2]
    result = campaign_mod.run_campaign(
        exps, jobs=1, cache=False, results_dir=None,
        write_artifacts=False, write_manifest=False, sanitize=True,
    )
    assert observed == [True, True]
    assert default_sanitize() is False
    assert not result.failed


# ------------------------------------------------- runtime parity

def co_head_to_head_recv(ctx):
    """Generator spelling of the recv/recv deadlock: runs as a real
    coroutine under runtime='coroutines' and through run_blocking on
    threads — the diagnosis must not depend on which."""
    peer = 1 - ctx.rank
    data, _ = yield from ctx.comm.co_recv(peer, TAG_PING)
    yield from ctx.comm.co_send(b"x", peer, TAG_PING)
    return data


def _diagnose(engine: str) -> DeadlockDiagnosis:
    with pytest.raises(DeadlockDiagnosis) as exc_info:
        run_with_timeout(
            api.run_job, co_head_to_head_recv, nranks=2,
            sanitize=True, engine=engine)
    return exc_info.value


def test_deadlock_diagnosis_identical_across_runtimes():
    threads = _diagnose("threads")
    coroutines = _diagnose("coroutines")
    assert sorted(threads.cycle) == sorted(coroutines.cycle) == [0, 1]
    assert str(threads) == str(coroutines)
    assert "wait-for cycle" in str(coroutines)
    assert "rank 0 waiting on recv(from rank 1" in str(coroutines)
