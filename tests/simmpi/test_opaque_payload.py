"""Direct unit tests for the zero-copy OpaquePayload frame."""

import pytest

from repro.simmpi.message import OpaquePayload, as_bytes

NONCE = bytes(range(12))
TAG = bytes(16)


def _frame(body=b"payload"):
    return OpaquePayload(NONCE, body, TAG)


def test_length_counts_all_parts():
    f = _frame(b"abc")
    assert len(f) == 12 + 3 + 16


def test_to_bytes_concatenates():
    f = _frame(b"abc")
    assert f.to_bytes() == NONCE + b"abc" + TAG


def test_base_is_shared_not_copied():
    body = b"x" * 1024
    f = _frame(body)
    assert f.base is body  # the whole point: no copy


def test_slicing_matches_materialized_bytes():
    f = _frame(b"hello world")
    raw = f.to_bytes()
    assert f[0] == raw[0]
    assert f[12:-16] == b"hello world"
    assert f[-16:] == TAG


def test_equality_with_bytes_and_frames():
    f = _frame(b"same")
    g = _frame(b"same")
    h = _frame(b"diff")
    assert f == g
    assert f == NONCE + b"same" + TAG
    assert f != h
    assert (f == 42) is False or f.__eq__(42) is NotImplemented


def test_hash_consistent_with_equality():
    assert hash(_frame(b"k")) == hash(_frame(b"k"))


def test_nested_frames_materialize_recursively():
    inner = _frame(b"core")
    outer = OpaquePayload(b"", inner, b"")
    assert outer.to_bytes() == inner.to_bytes()
    assert len(outer) == len(inner)


def test_as_bytes_helper():
    f = _frame(b"abc")
    assert as_bytes(f) == f.to_bytes()
    assert as_bytes(b"plain") == b"plain"
    assert as_bytes(bytearray(b"ba")) == b"ba"
    assert isinstance(as_bytes(memoryview(b"mv")), bytes)


def test_repr_shows_size_not_content():
    f = _frame(b"secret")
    assert "secret" not in repr(f)
    assert str(len(f)) in repr(f)
