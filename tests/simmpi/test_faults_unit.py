"""Unit tests for the fault-injection primitives."""

import pytest

from repro.simmpi.faults import (
    FaultAction,
    FaultInjector,
    _flip_bit,
    corrupt_every_nth,
    target_route,
)
from repro.simmpi.message import Envelope, OpaquePayload


def _env(payload=b"\x00" * 8, src=0, dst=1):
    return Envelope(src=src, dst=dst, tag=0, comm_id=0, payload=payload)


def test_flip_bit_changes_exactly_one_bit():
    out = _flip_bit(b"\x00\x00", 3)
    assert out == b"\x08\x00"
    out = _flip_bit(b"\x00\x00", 9)
    assert out == b"\x00\x02"


def test_flip_bit_wraps_long_indices():
    out = _flip_bit(b"\x00", 8)  # wraps back to byte 0
    assert out == b"\x01"


def test_flip_bit_empty_payload_noop():
    assert _flip_bit(b"", 5) == b""


def test_flip_bit_materializes_opaque():
    frame = OpaquePayload(b"\x00" * 12, b"\xff" * 4, b"\x00" * 16)
    out = _flip_bit(frame, 0)
    assert isinstance(out, bytes)
    assert len(out) == 32
    assert out != frame.to_bytes()


def test_injector_ledger_counts():
    inj = FaultInjector(corrupt_every_nth(2))
    for _ in range(4):
        inj.apply(_env())
    assert inj.injected[FaultAction.CORRUPT] == 2
    assert inj.injected[FaultAction.DELIVER] == 2


def test_duplicate_returns_two_independent_envelopes():
    inj = FaultInjector(target_route(0, 1, FaultAction.DUPLICATE))
    outs = inj.apply(_env())
    assert len(outs) == 2
    assert outs[0] is not outs[1]
    assert outs[0].payload == outs[1].payload
    # The clone must not share the delivery-chain bookkeeping.
    assert "delivery_done" not in outs[1].info


def test_duplicate_of_rts_is_suppressed():
    env = _env()
    env.info["rendezvous_trigger"] = lambda: None
    inj = FaultInjector(target_route(0, 1, FaultAction.DUPLICATE))
    assert inj.apply(env) == [env]


def test_drop_returns_empty():
    inj = FaultInjector(target_route(0, 1, FaultAction.DROP))
    assert inj.apply(_env()) == []
    assert inj.apply(_env(src=2, dst=3)) != []  # other routes untouched


def test_corrupt_start_offset():
    inj = FaultInjector(corrupt_every_nth(10, start=2))
    results = [inj.apply(_env())[0].payload != b"\x00" * 8 for _ in range(5)]
    assert results == [False, False, True, False, False]
