"""Unit tests for the fault-injection primitives."""

import pytest

from repro.simmpi.faults import (
    FaultAction,
    FaultInjector,
    FaultPlan,
    _flip_bit,
    corrupt_every_nth,
    parse_fault_plan,
    target_route,
)
from repro.simmpi.message import Envelope, OpaquePayload


def _env(payload=b"\x00" * 8, src=0, dst=1):
    return Envelope(src=src, dst=dst, tag=0, comm_id=0, payload=payload)


def test_flip_bit_changes_exactly_one_bit():
    out = _flip_bit(b"\x00\x00", 3)
    assert out == b"\x08\x00"
    out = _flip_bit(b"\x00\x00", 9)
    assert out == b"\x00\x02"


def test_flip_bit_wraps_long_indices():
    out = _flip_bit(b"\x00", 8)  # wraps back to byte 0
    assert out == b"\x01"


def test_flip_bit_empty_payload_noop():
    assert _flip_bit(b"", 5) == b""


def test_flip_bit_materializes_opaque():
    frame = OpaquePayload(b"\x00" * 12, b"\xff" * 4, b"\x00" * 16)
    out = _flip_bit(frame, 0)
    assert isinstance(out, bytes)
    assert len(out) == 32
    assert out != frame.to_bytes()


def test_injector_ledger_counts():
    inj = FaultInjector(corrupt_every_nth(2))
    for _ in range(4):
        inj.apply(_env())
    assert inj.injected[FaultAction.CORRUPT] == 2
    assert inj.injected[FaultAction.DELIVER] == 2


def test_duplicate_returns_two_independent_envelopes():
    inj = FaultInjector(target_route(0, 1, FaultAction.DUPLICATE))
    outs = inj.apply(_env())
    assert len(outs) == 2
    assert outs[0] is not outs[1]
    assert outs[0].payload == outs[1].payload
    # The clone must not share the delivery-chain bookkeeping.
    assert "delivery_done" not in outs[1].info


def test_duplicate_of_rts_is_suppressed():
    env = _env()
    env.info["rendezvous_trigger"] = lambda: None
    inj = FaultInjector(target_route(0, 1, FaultAction.DUPLICATE))
    assert inj.apply(env) == [env]


def test_drop_returns_empty():
    inj = FaultInjector(target_route(0, 1, FaultAction.DROP))
    assert inj.apply(_env()) == []
    assert inj.apply(_env(src=2, dst=3)) != []  # other routes untouched


def test_corrupt_start_offset():
    inj = FaultInjector(corrupt_every_nth(10, start=2))
    results = [inj.apply(_env())[0].payload != b"\x00" * 8 for _ in range(5)]
    assert results == [False, False, True, False, False]


def test_rts_duplicate_counted_as_deliver_not_duplicate():
    # Regression: the early-return used to count the RTS in the
    # DUPLICATE ledger slot even though only one envelope was delivered.
    env = _env()
    env.info["rendezvous_trigger"] = lambda: None
    inj = FaultInjector(target_route(0, 1, FaultAction.DUPLICATE))
    outs = inj.apply(env)
    assert outs == [env]
    assert inj.injected[FaultAction.DUPLICATE] == 0
    assert inj.injected[FaultAction.DELIVER] == 1
    assert inj.rts_duplicates_skipped == 1


# -- FaultPlan -----------------------------------------------------------------


def test_fault_plan_validates_rates():
    with pytest.raises(ValueError, match="rate"):
        FaultPlan(drop=-0.1)
    with pytest.raises(ValueError, match="rate"):
        FaultPlan(corrupt=1.5)
    with pytest.raises(ValueError, match="exceed"):
        FaultPlan(drop=0.6, corrupt=0.5)


def test_fault_plan_builds_fresh_deterministic_injectors():
    plan = FaultPlan(drop=0.3, corrupt=0.2, seed=42)
    a, b = plan.build(), plan.build()
    assert a is not b
    envs = [_env() for _ in range(50)]
    seq_a = [len(a.apply(e)) for e in envs]
    envs = [_env() for _ in range(50)]
    seq_b = [len(b.apply(e)) for e in envs]
    assert seq_a == seq_b  # same seed, same fault sequence
    assert a.injected == b.injected
    assert 0 < a.injected[FaultAction.DROP] < 50


def test_fault_plan_filters_do_not_consume_rng():
    # Filtered-out traffic must not perturb the fault sequence.
    plan = FaultPlan(drop=0.5, seed=7, dst=1)
    a = plan.build()
    seq_a = [len(a.apply(_env())) for _ in range(20)]
    b = plan.build()
    seq_b = []
    for i in range(20):
        assert b.apply(_env(src=2, dst=3)) != []  # never faulted
        seq_b.append(len(b.apply(_env())))
    assert seq_a == seq_b


def test_parse_fault_plan():
    plan = parse_fault_plan("drop=0.05, corrupt=0.02, seed=7, dst=1")
    assert plan == FaultPlan(drop=0.05, corrupt=0.02, seed=7, dst=1)
    assert parse_fault_plan("") == FaultPlan()
    with pytest.raises(ValueError, match="unknown fault option"):
        parse_fault_plan("dorp=0.05")
    with pytest.raises(ValueError, match="key=value"):
        parse_fault_plan("drop")
