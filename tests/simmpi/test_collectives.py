"""Correctness tests for the collective algorithms (all code paths)."""

import numpy as np
import pytest

from repro.models.cpu import ClusterSpec
from repro.simmpi import run_program
from repro.simmpi.collectives.common import (
    binomial_children,
    binomial_parent,
    is_power_of_two,
    next_power_of_two,
    split_chunks,
    subtree_span,
)
from repro.util.units import KiB

CLUSTER = ClusterSpec(nodes=4, cores_per_node=4)


def _run(nranks, prog):
    return run_program(nranks, prog, cluster=CLUSTER).results


# ---- helpers ---------------------------------------------------------------


def test_split_chunks_even_and_uneven():
    assert split_chunks(b"abcdef", 3) == [b"ab", b"cd", b"ef"]
    assert split_chunks(b"abcdefg", 3) == [b"abc", b"de", b"fg"]
    assert split_chunks(b"", 3) == [b"", b"", b""]
    assert b"".join(split_chunks(bytes(range(100)), 7)) == bytes(range(100))
    with pytest.raises(ValueError):
        split_chunks(b"x", 0)


def test_binomial_tree_structure():
    # p=8: root's children are 4, 2, 1; node 4's are 6, 5; node 6's is 7.
    assert binomial_children(0, 8) == [4, 2, 1]
    assert binomial_children(4, 8) == [6, 5]
    assert binomial_children(6, 8) == [7]
    assert binomial_children(7, 8) == []
    assert binomial_parent(6) == 4
    assert binomial_parent(5) == 4
    assert binomial_parent(4) == 0
    with pytest.raises(ValueError):
        binomial_parent(0)


def test_binomial_tree_covers_all_ranks():
    for p in (2, 3, 5, 8, 13, 16):
        seen = {0}
        frontier = [0]
        while frontier:
            v = frontier.pop()
            for c in binomial_children(v, p):
                assert c not in seen
                seen.add(c)
                frontier.append(c)
        assert seen == set(range(p))


def test_subtree_span():
    assert subtree_span(0, 8) == (0, 8)
    assert subtree_span(4, 8) == (4, 8)
    assert subtree_span(6, 8) == (6, 8)
    assert subtree_span(2, 8) == (2, 4)
    assert subtree_span(5, 6) == (5, 6)


def test_power_helpers():
    assert next_power_of_two(1) == 1
    assert next_power_of_two(5) == 8
    assert is_power_of_two(16)
    assert not is_power_of_two(12)
    with pytest.raises(ValueError):
        next_power_of_two(0)


# ---- bcast ----------------------------------------------------------------


@pytest.mark.parametrize("nranks", [1, 2, 5, 8, 16])
@pytest.mark.parametrize("size", [0, 1, 100, 20 * KiB])
def test_bcast_all_roots_all_sizes(nranks, size):
    payload = bytes(i % 251 for i in range(size))
    root = nranks - 1

    def prog(ctx):
        data = payload if ctx.rank == root else None
        return ctx.comm.bcast(data, root, nbytes=size)

    results = _run(nranks, prog)
    assert all(r == payload for r in results)


def test_bcast_large_uses_scatter_allgather_path():
    """A 64 KiB bcast crosses the 12 KiB threshold; verify content."""
    payload = np.arange(64 * KiB, dtype=np.uint8).tobytes()

    def prog(ctx):
        data = payload if ctx.rank == 0 else None
        return ctx.comm.bcast(data, 0, nbytes=len(payload))

    assert all(r == payload for r in _run(8, prog))


def test_bcast_requires_nbytes_on_nonroot():
    from repro.des.process import ProcessFailed

    def prog(ctx):
        data = b"abc" if ctx.rank == 0 else None
        return ctx.comm.bcast(data, 0)

    with pytest.raises(ProcessFailed):
        _run(2, prog)


# ---- gather / scatter --------------------------------------------------------


@pytest.mark.parametrize("nranks", [1, 2, 6, 8])
def test_gather(nranks):
    def prog(ctx):
        return ctx.comm.gather(f"r{ctx.rank}".encode(), root=0)

    results = _run(nranks, prog)
    assert results[0] == [f"r{i}".encode() for i in range(nranks)]
    assert all(r is None for r in results[1:])


def test_gather_uneven_sizes():
    def prog(ctx):
        return ctx.comm.gather(b"x" * ctx.rank, root=1)

    results = _run(5, prog)
    assert results[1] == [b"x" * i for i in range(5)]


@pytest.mark.parametrize("nranks", [1, 2, 6, 8])
def test_scatter(nranks):
    chunks = [f"chunk{i}".encode() for i in range(nranks)]

    def prog(ctx):
        data = chunks if ctx.rank == 0 else None
        return ctx.comm.scatter(data, root=0)

    assert _run(nranks, prog) == chunks


def test_scatter_wrong_chunk_count():
    from repro.des.process import ProcessFailed

    def prog(ctx):
        data = [b"a"] if ctx.rank == 0 else None
        return ctx.comm.scatter(data, root=0)

    with pytest.raises(ProcessFailed):
        _run(2, prog)


# ---- allgather ---------------------------------------------------------------


@pytest.mark.parametrize("nranks", [1, 2, 4, 8])  # power of two: rec. doubling
def test_allgather_recursive_doubling(nranks):
    def prog(ctx):
        return ctx.comm.allgather(bytes([ctx.rank]) * 4)

    results = _run(nranks, prog)
    expected = [bytes([i]) * 4 for i in range(nranks)]
    assert all(r == expected for r in results)


@pytest.mark.parametrize("nranks", [3, 5, 7])  # non-pow2: ring
def test_allgather_ring_nonpow2(nranks):
    def prog(ctx):
        return ctx.comm.allgather(f"<{ctx.rank}>".encode())

    results = _run(nranks, prog)
    expected = [f"<{i}>".encode() for i in range(nranks)]
    assert all(r == expected for r in results)


def test_allgather_large_uses_ring():
    per_rank = 128 * KiB  # 8 ranks -> 1 MiB total > 512 KiB threshold

    def prog(ctx):
        return ctx.comm.allgather(bytes([ctx.rank]) * per_rank)

    results = _run(8, prog)
    assert results[0] == [bytes([i]) * per_rank for i in range(8)]


# ---- alltoall -----------------------------------------------------------------


@pytest.mark.parametrize("nranks", [1, 2, 5, 8])
def test_alltoall_small(nranks):
    def prog(ctx):
        chunks = [f"{ctx.rank}->{d}".encode() for d in range(nranks)]
        return ctx.comm.alltoall(chunks)

    results = _run(nranks, prog)
    for r in range(nranks):
        assert results[r] == [f"{s}->{r}".encode() for s in range(nranks)]


@pytest.mark.parametrize("nranks", [4, 6])
def test_alltoall_large_pairwise(nranks):
    per_pair = 64 * KiB

    def prog(ctx):
        chunks = [bytes([(ctx.rank * 16 + d) % 251]) * per_pair for d in range(nranks)]
        return ctx.comm.alltoall(chunks)

    results = _run(nranks, prog)
    for r in range(nranks):
        assert results[r] == [
            bytes([(s * 16 + r) % 251]) * per_pair for s in range(nranks)
        ]


def test_alltoallv_unequal_sizes():
    def prog(ctx):
        chunks = [bytes([ctx.rank]) * (d + 1) for d in range(ctx.size)]
        return ctx.comm.alltoallv(chunks)

    results = _run(4, prog)
    for r in range(4):
        assert results[r] == [bytes([s]) * (r + 1) for s in range(4)]


def test_alltoall_wrong_chunk_count():
    from repro.des.process import ProcessFailed

    def prog(ctx):
        return ctx.comm.alltoall([b"x"])

    with pytest.raises(ProcessFailed):
        _run(2, prog)


# ---- reduce / allreduce -----------------------------------------------------------


def _sum_op(a: bytes, b: bytes) -> bytes:
    return (
        np.frombuffer(a, dtype=np.int64) + np.frombuffer(b, dtype=np.int64)
    ).tobytes()


@pytest.mark.parametrize("nranks", [1, 2, 5, 8])
def test_reduce_sum(nranks):
    def prog(ctx):
        vec = np.full(4, ctx.rank + 1, dtype=np.int64).tobytes()
        return ctx.comm.reduce(vec, _sum_op, root=0)

    results = _run(nranks, prog)
    expected = np.full(4, sum(range(1, nranks + 1)), dtype=np.int64)
    assert np.array_equal(np.frombuffer(results[0], dtype=np.int64), expected)
    assert all(r is None for r in results[1:])


@pytest.mark.parametrize("nranks", [1, 2, 3, 4, 6, 8])  # incl. non-pow2 fold
def test_allreduce_sum(nranks):
    def prog(ctx):
        vec = np.array([ctx.rank, ctx.rank * 2], dtype=np.int64).tobytes()
        return ctx.comm.allreduce(vec, _sum_op)

    results = _run(nranks, prog)
    s = sum(range(nranks))
    expected = np.array([s, 2 * s], dtype=np.int64)
    for r in results:
        assert np.array_equal(np.frombuffer(r, dtype=np.int64), expected)


def test_allreduce_max_op():
    def prog(ctx):
        v = np.array([ctx.rank], dtype=np.int64).tobytes()
        return ctx.comm.allreduce(
            v,
            lambda a, b: np.maximum(
                np.frombuffer(a, np.int64), np.frombuffer(b, np.int64)
            ).tobytes(),
        )

    results = _run(6, prog)
    assert all(np.frombuffer(r, np.int64)[0] == 5 for r in results)


def test_reduce_op_validation():
    from repro.des.process import ProcessFailed

    def prog(ctx):
        return ctx.comm.allreduce(b"ab", lambda a, b: "not-bytes")

    with pytest.raises(ProcessFailed):
        _run(2, prog)


# ---- barrier ---------------------------------------------------------------------


@pytest.mark.parametrize("nranks", [1, 2, 5, 8])
def test_barrier_synchronizes(nranks):
    def prog(ctx):
        # Rank 0 works for 1 ms before the barrier; everyone must leave
        # the barrier no earlier than that.
        if ctx.rank == 0:
            ctx.compute(1e-3)
        ctx.comm.barrier()
        return ctx.now

    results = _run(nranks, prog)
    assert all(t >= 1e-3 or nranks == 1 for t in results)


def test_consecutive_collectives_do_not_cross_talk():
    """Back-to-back collectives with identical shapes must not steal
    each other's messages (per-invocation tag blocks)."""

    def prog(ctx):
        a = ctx.comm.allgather(bytes([ctx.rank]))
        b = ctx.comm.allgather(bytes([ctx.rank * 2]))
        return (a, b)

    results = _run(4, prog)
    for a, b in results:
        assert a == [bytes([i]) for i in range(4)]
        assert b == [bytes([i * 2]) for i in range(4)]
