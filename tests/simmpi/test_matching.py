"""Unit tests for the matching engine and envelopes."""

import pytest

from repro.simmpi.matching import MatchingEngine
from repro.simmpi.message import ANY_SOURCE, ANY_TAG, Envelope


def _env(src=0, dst=1, tag=0, comm_id=0, payload=b"x"):
    return Envelope(src=src, dst=dst, tag=tag, comm_id=comm_id, payload=payload)


def test_envelope_matching_rules():
    env = _env(src=3, tag=7)
    assert env.matches(3, 7)
    assert env.matches(ANY_SOURCE, 7)
    assert env.matches(3, ANY_TAG)
    assert env.matches(ANY_SOURCE, ANY_TAG)
    assert not env.matches(2, 7)
    assert not env.matches(3, 8)


def test_envelope_wire_bytes_defaults_to_payload():
    assert _env(payload=b"abc").wire_bytes == 3
    e = Envelope(src=0, dst=1, tag=0, comm_id=0, payload=b"abc", wire_bytes=31)
    assert e.wire_bytes == 31


def test_envelope_seq_monotonic():
    assert _env().seq < _env().seq


def test_posted_recv_matches_later_delivery():
    engine = MatchingEngine(1)
    hits = []
    engine.post_recv(0, 5, 0, hits.append)
    assert engine.pending_posted == 1
    engine.deliver(_env(tag=5))
    assert len(hits) == 1
    assert engine.pending_posted == 0


def test_unexpected_message_matches_later_post():
    engine = MatchingEngine(1)
    env = _env(tag=9)
    engine.deliver(env)
    assert engine.pending_unexpected == 1
    hits = []
    engine.post_recv(ANY_SOURCE, 9, 0, hits.append)
    assert hits == [env]
    assert engine.pending_unexpected == 0


def test_unexpected_fifo_order():
    engine = MatchingEngine(1)
    first, second = _env(payload=b"1"), _env(payload=b"2")
    engine.deliver(first)
    engine.deliver(second)
    hits = []
    engine.post_recv(ANY_SOURCE, ANY_TAG, 0, hits.append)
    engine.post_recv(ANY_SOURCE, ANY_TAG, 0, hits.append)
    assert hits == [first, second]


def test_posted_fifo_order():
    engine = MatchingEngine(1)
    hits = []
    engine.post_recv(ANY_SOURCE, ANY_TAG, 0, lambda e: hits.append(("a", e)))
    engine.post_recv(ANY_SOURCE, ANY_TAG, 0, lambda e: hits.append(("b", e)))
    engine.deliver(_env())
    assert [h[0] for h in hits] == ["a"]
    engine.deliver(_env())
    assert [h[0] for h in hits] == ["a", "b"]


def test_comm_id_isolation():
    engine = MatchingEngine(1)
    hits = []
    engine.post_recv(ANY_SOURCE, ANY_TAG, comm_id=1, on_match=hits.append)
    engine.deliver(_env(comm_id=0))
    assert not hits
    assert engine.pending_unexpected == 1
    engine.deliver(_env(comm_id=1))
    assert len(hits) == 1


def test_wrong_destination_rejected():
    engine = MatchingEngine(1)
    with pytest.raises(ValueError):
        engine.deliver(_env(dst=2))


def test_selective_recv_skips_nonmatching_unexpected():
    engine = MatchingEngine(1)
    engine.deliver(_env(src=2, tag=1, payload=b"wrong"))
    engine.deliver(_env(src=3, tag=2, payload=b"right"))
    hits = []
    engine.post_recv(3, 2, 0, hits.append)
    assert hits[0].payload == b"right"
    assert engine.pending_unexpected == 1
