"""Tests for communicator splitting, probing, reduce_scatter and scan."""

import numpy as np
import pytest

from repro.models.cpu import ClusterSpec
from repro.simmpi import ANY_SOURCE, ANY_TAG, run_program

CLUSTER = ClusterSpec(nodes=2, cores_per_node=4)


def _sum_op(a: bytes, b: bytes) -> bytes:
    return (
        np.frombuffer(a, dtype=np.int64) + np.frombuffer(b, dtype=np.int64)
    ).tobytes()


# ---- split -------------------------------------------------------------


def test_split_into_even_odd_groups():
    def prog(ctx):
        sub = ctx.comm.split(color=ctx.rank % 2)
        assert sub is not None
        roster = sub.allgather(bytes([ctx.rank]))
        return (sub.rank, sub.size, [b[0] for b in roster])

    results = run_program(8, prog, cluster=CLUSTER).results
    evens = [r for r in range(8) if r % 2 == 0]
    odds = [r for r in range(8) if r % 2 == 1]
    for r in range(8):
        local_rank, size, roster = results[r]
        assert size == 4
        assert roster == (evens if r % 2 == 0 else odds)
        assert roster[local_rank] == r


def test_split_key_reorders_ranks():
    def prog(ctx):
        # Reverse order within one group via the key.
        sub = ctx.comm.split(color=0, key=-ctx.rank)
        roster = sub.allgather(bytes([ctx.rank]))
        return [b[0] for b in roster]

    results = run_program(4, prog, cluster=CLUSTER).results
    assert results[0] == [3, 2, 1, 0]


def test_split_undefined_color():
    def prog(ctx):
        sub = ctx.comm.split(color=None if ctx.rank == 0 else 1)
        if ctx.rank == 0:
            return sub is None
        return sub.size

    results = run_program(4, prog, cluster=CLUSTER).results
    assert results[0] is True
    assert results[1:] == [3, 3, 3]


def test_split_traffic_is_isolated():
    """Point-to-point in one subgroup must not match messages of the
    other subgroup even with identical (local source, tag)."""

    def prog(ctx):
        sub = ctx.comm.split(color=ctx.rank // 2)  # pairs: {0,1}, {2,3}
        if sub.rank == 0:
            sub.send(f"group{ctx.rank // 2}".encode(), 1, tag=5)
            return None
        data, status = sub.recv(0, 5)
        return (data, status.source)

    results = run_program(4, prog, cluster=CLUSTER).results
    assert results[1] == (b"group0", 0)
    assert results[3] == (b"group1", 0)


def test_nested_split():
    def prog(ctx):
        half = ctx.comm.split(color=ctx.rank // 4)
        quarter = half.split(color=half.rank // 2)
        return (quarter.size, quarter.rank)

    results = run_program(8, prog, cluster=CLUSTER).results
    assert all(size == 2 for size, _r in results)
    assert [r for _s, r in results] == [0, 1, 0, 1, 0, 1, 0, 1]


def test_split_collectives_work_in_groups():
    """Row-communicator allreduce, as NAS CG would use."""

    def prog(ctx):
        row = ctx.comm.split(color=ctx.rank // 2)
        vec = np.array([ctx.rank], dtype=np.int64).tobytes()
        total = row.allreduce(vec, _sum_op)
        return int(np.frombuffer(total, np.int64)[0])

    results = run_program(4, prog, cluster=CLUSTER).results
    assert results == [1, 1, 5, 5]


def test_split_validates_color():
    from repro.des.process import ProcessFailed

    def prog(ctx):
        ctx.comm.split(color=-3)

    with pytest.raises(ProcessFailed):
        run_program(2, prog, cluster=CLUSTER)


# ---- probe -----------------------------------------------------------------


def test_iprobe_peeks_without_consuming():
    def prog(ctx):
        if ctx.rank == 0:
            ctx.comm.send(b"probe-me", 1, tag=9)
        else:
            status = ctx.comm.probe(0, 9)  # blocking: message is queued
            assert status.count == 8
            peek = ctx.comm.iprobe(0, 9)
            assert peek is not None and peek.source == 0
            data, _status = ctx.comm.recv(0, 9)
            assert ctx.comm.iprobe(0, 9) is None  # consumed
            return data

    results = run_program(2, prog, cluster=CLUSTER).results
    assert results[1] == b"probe-me"


def test_iprobe_returns_none_when_empty():
    def prog(ctx):
        return ctx.comm.iprobe(ANY_SOURCE, ANY_TAG)

    assert run_program(1, prog, cluster=ClusterSpec(1, 1)).results == [None]


def test_probe_blocks_until_arrival():
    def prog(ctx):
        if ctx.rank == 0:
            ctx.compute(1e-3)
            ctx.comm.send(b"late", 1, tag=2)
        else:
            status = ctx.comm.probe(ANY_SOURCE, 2)
            arrival = ctx.now
            data, _status = ctx.comm.recv(status.source, 2)
            return (arrival >= 1e-3, data)

    results = run_program(2, prog, cluster=CLUSTER).results
    assert results[1] == (True, b"late")


# ---- reduce_scatter / scan ---------------------------------------------------


@pytest.mark.parametrize("nranks", [1, 2, 4, 8])
def test_reduce_scatter_pow2(nranks):
    def prog(ctx):
        chunks = [
            np.array([ctx.rank * 10 + i], dtype=np.int64).tobytes()
            for i in range(nranks)
        ]
        out = ctx.comm.reduce_scatter(chunks, _sum_op)
        return int(np.frombuffer(out, np.int64)[0])

    results = run_program(nranks, prog, cluster=CLUSTER).results
    # chunk i reduced over ranks: sum_r (10r + i)
    base = 10 * sum(range(nranks))
    assert results == [base + i * nranks for i in range(nranks)]


@pytest.mark.parametrize("nranks", [3, 6])
def test_reduce_scatter_nonpow2_fallback(nranks):
    def prog(ctx):
        chunks = [
            np.array([ctx.rank + i], dtype=np.int64).tobytes()
            for i in range(nranks)
        ]
        out = ctx.comm.reduce_scatter(chunks, _sum_op)
        return int(np.frombuffer(out, np.int64)[0])

    results = run_program(nranks, prog, cluster=CLUSTER).results
    base = sum(range(nranks))
    assert results == [base + i * nranks for i in range(nranks)]


def test_reduce_scatter_validates_chunk_count():
    from repro.des.process import ProcessFailed

    def prog(ctx):
        ctx.comm.reduce_scatter([b"x"], _sum_op)

    with pytest.raises(ProcessFailed):
        run_program(2, prog, cluster=CLUSTER)


@pytest.mark.parametrize("nranks", [1, 2, 5, 8])
def test_scan_inclusive_prefix(nranks):
    def prog(ctx):
        vec = np.array([ctx.rank + 1], dtype=np.int64).tobytes()
        out = ctx.comm.scan(vec, _sum_op)
        return int(np.frombuffer(out, np.int64)[0])

    results = run_program(nranks, prog, cluster=CLUSTER).results
    assert results == [sum(range(1, r + 2)) for r in range(nranks)]
