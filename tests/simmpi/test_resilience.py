"""The reliable-delivery layer: policy values, backoff schedules,
retransmission under drops, NACK + fresh-nonce resealing of auth
failures, and escalation."""

import pytest

from repro.encmpi import EncryptedComm, SecurityConfig
from repro.models.cpu import ClusterSpec
from repro.simmpi import run_program
from repro.simmpi.faults import FaultAction, FaultInjector, FaultPlan, target_route
from repro.simmpi.resilience import (
    ResilienceExhausted,
    ResiliencePolicy,
    parse_resilience_policy,
)
from repro.simmpi.tracing import TraceRecorder

CLUSTER = ClusterSpec(nodes=2, cores_per_node=4)
TAG_DATA = 5

POLICY = ResiliencePolicy(max_retries=4, timeout=1e-3)


# -- policy values -------------------------------------------------------------


def test_policy_validates_fields():
    with pytest.raises(ValueError, match="max_retries"):
        ResiliencePolicy(max_retries=-1)
    with pytest.raises(ValueError, match="timeout"):
        ResiliencePolicy(timeout=0.0)
    with pytest.raises(ValueError, match="backoff"):
        ResiliencePolicy(backoff="quadratic")
    with pytest.raises(ValueError, match="escalation"):
        ResiliencePolicy(escalation="explode")
    with pytest.raises(ValueError, match="backoff_factor"):
        ResiliencePolicy(backoff_factor=0.5)


def test_exponential_backoff_schedule():
    pol = ResiliencePolicy(max_retries=4, timeout=1e-3, backoff="exponential")
    assert pol.retry_schedule() == (1e-3, 2e-3, 4e-3, 8e-3)


def test_fixed_backoff_schedule():
    pol = ResiliencePolicy(max_retries=3, timeout=5e-4, backoff="fixed")
    assert pol.retry_schedule() == (5e-4, 5e-4, 5e-4)


def test_retry_delay_is_one_based():
    with pytest.raises(ValueError, match="1-based"):
        POLICY.retry_delay(0)


def test_parse_resilience_policy():
    pol = parse_resilience_policy(
        "retries=6, timeout=0.002, backoff=fixed, escalation=drop, factor=3"
    )
    assert pol == ResiliencePolicy(
        max_retries=6, timeout=2e-3, backoff="fixed",
        escalation="drop", backoff_factor=3.0,
    )
    assert parse_resilience_policy("") == ResiliencePolicy()
    with pytest.raises(ValueError, match="unknown resilience option"):
        parse_resilience_policy("reties=3")


# -- plain-MPI retransmission (timeout path) -----------------------------------


def _pingpong(iters=4, payload=b"\xab" * 64):
    def program(ctx):
        got = []
        for _ in range(iters):
            if ctx.rank == 0:
                ctx.comm.send(payload, 1, tag=TAG_DATA)
                got.append(ctx.comm.recv(1, TAG_DATA)[0])
            else:
                got.append(ctx.comm.recv(0, TAG_DATA)[0])
                ctx.comm.send(payload, 0, tag=TAG_DATA)
        return got

    return program


def _drop_first_n(n):
    """Injector dropping the first *n* envelopes it sees."""
    seen = {"n": 0}

    def policy(env):
        seen["n"] += 1
        return FaultAction.DROP if seen["n"] <= n else FaultAction.DELIVER

    return FaultInjector(policy)


def test_dropped_message_is_retransmitted():
    res = run_program(
        2, _pingpong(), cluster=CLUSTER,
        fault_injector=_drop_first_n(1), resilience=POLICY,
    )
    assert res.results[0] == res.results[1] == [b"\xab" * 64] * 4
    rep = res.resilience
    assert rep.retransmits == 1
    assert rep.gave_up == 0
    assert rep.acks == rep.tracked  # every flight eventually acked


def test_retransmit_costs_at_least_the_timeout():
    clean = run_program(2, _pingpong(), cluster=CLUSTER, resilience=POLICY)
    faulty = run_program(
        2, _pingpong(), cluster=CLUSTER,
        fault_injector=_drop_first_n(1), resilience=POLICY,
    )
    # the first retransmission waits >= retry_delay(1) past the expected
    # delivery; the makespan must reflect that (timeout-boundary check)
    assert faulty.duration >= clean.duration + POLICY.retry_delay(1)


def test_consecutive_drops_follow_backoff_schedule():
    pol = ResiliencePolicy(max_retries=4, timeout=1e-3, backoff="exponential")
    clean = run_program(2, _pingpong(iters=1), cluster=CLUSTER, resilience=pol)
    faulty = run_program(
        2, _pingpong(iters=1), cluster=CLUSTER,
        fault_injector=_drop_first_n(3), resilience=pol,
    )
    # three drops of the same flight wait timeout, 2*timeout, 4*timeout
    waited = sum(pol.retry_schedule()[:3])
    assert faulty.duration >= clean.duration + waited
    assert faulty.resilience.retransmits == 3


def test_retry_and_ack_events_recorded():
    rec = TraceRecorder()
    run_program(
        2, _pingpong(iters=2), cluster=CLUSTER, trace=rec,
        fault_injector=_drop_first_n(1), resilience=POLICY,
    )
    (retry,) = rec.events_in("transport", "retry")
    assert retry.data["attempt"] == 1
    assert retry.data["reason"] == "timeout"
    acks = rec.events_in("transport", "ack")
    assert len(acks) == rec.comm.total_messages
    counters = rec.rank_counters(retry.rank)
    assert counters.retransmits == 1
    assert rec.events_in("transport", "gave_up") == []


def test_policy_unset_keeps_counters_and_events_silent():
    rec = TraceRecorder()
    run_program(2, _pingpong(iters=2), cluster=CLUSTER, trace=rec)
    for kind in ("retry", "nack", "ack", "gave_up"):
        assert rec.events_in("transport", kind) == []
    for r in (0, 1):
        c = rec.rank_counters(r)
        assert (c.retransmits, c.nacks, c.acks, c.gave_ups) == (0, 0, 0, 0)


def test_fifo_order_survives_retransmission():
    # Drop the first of several same-route sends: later sends must not
    # overtake it at the receiver.
    def program(ctx):
        if ctx.rank == 0:
            reqs = [
                ctx.comm.isend(bytes([i]) * 8, 1, tag=TAG_DATA)
                for i in range(4)
            ]
            for r in reqs:
                r.wait()
            return None
        return [ctx.comm.recv(0, TAG_DATA)[0][0] for _ in range(4)]

    res = run_program(
        2, program, cluster=CLUSTER,
        fault_injector=_drop_first_n(1), resilience=POLICY,
    )
    assert res.results[1] == [0, 1, 2, 3]


# -- encrypted NACK path (auth failures) ---------------------------------------


ENC_CONFIG = SecurityConfig(
    library="boringssl",
    crypto_mode="real",
    nonce_strategy="counter",
    replay_window=32,
)


def _enc_pingpong(iters=4, size=64):
    payload = b"\xcd" * size

    def program(ctx):
        enc = EncryptedComm(ctx, ENC_CONFIG)
        got = []
        for _ in range(iters):
            if ctx.rank == 0:
                enc.send(payload, 1, tag=TAG_DATA)
                got.append(enc.recv(1, TAG_DATA)[0])
            else:
                got.append(enc.recv(0, TAG_DATA)[0])
                enc.send(payload, 0, tag=TAG_DATA)
        return got

    return program


def _corrupt_first_n(n):
    seen = {"n": 0}

    def policy(env):
        seen["n"] += 1
        return FaultAction.CORRUPT if seen["n"] <= n else FaultAction.DELIVER

    return FaultInjector(policy)


def test_corrupted_frame_is_nacked_and_resealed():
    rec = TraceRecorder()
    res = run_program(
        2, _enc_pingpong(), cluster=CLUSTER, trace=rec,
        fault_injector=_corrupt_first_n(1), resilience=POLICY,
        sanitize=True,  # nonce ledger must stay clean across reseals
    )
    assert res.results[0] == res.results[1] == [b"\xcd" * 64] * 4
    rep = res.resilience
    assert rep.nacks == 1
    assert rep.retransmits == 1
    (nack,) = rec.events_in("transport", "nack")
    assert nack.data["reason"] == "auth_fail"
    # the retransmission was sealed afresh: one extra seal than opens
    seals = rec.events_in("aead", "seal")
    opens = rec.events_in("aead", "open")
    assert len(seals) == len(opens) + 1


def test_reseal_uses_a_fresh_nonce():
    rec = TraceRecorder()
    run_program(
        2, _enc_pingpong(iters=2), cluster=CLUSTER, trace=rec,
        fault_injector=_corrupt_first_n(1), resilience=POLICY,
        sanitize=True,
    )
    # counter nonces are unique per seal and the armed sanitizer raises
    # NonceReuseError on any repeat — completing proves the reseal drew
    # a fresh nonce; the event count pins that a reseal happened at all
    seals = rec.events_in("aead", "seal")
    assert len(seals) == 5  # 4 sends + 1 reseal


def test_replay_protection_still_works_under_resilience():
    # A duplicated frame is a replay: the guard rejects the copy, the
    # legitimate traffic flows on, nothing escalates.
    def dup_policy():
        seen = {"n": 0}

        def policy(env):
            seen["n"] += 1
            return FaultAction.DUPLICATE if seen["n"] == 1 else FaultAction.DELIVER

        return FaultInjector(policy)

    res = run_program(
        2, _enc_pingpong(), cluster=CLUSTER,
        fault_injector=dup_policy(), resilience=POLICY, sanitize=True,
    )
    assert res.results[0] == res.results[1] == [b"\xcd" * 64] * 4
    assert res.resilience.gave_up == 0


# -- escalation ----------------------------------------------------------------


def _always_drop_route():
    return FaultInjector(target_route(0, 1, FaultAction.DROP))


def test_escalation_fail_raises_exhausted():
    pol = ResiliencePolicy(max_retries=2, timeout=1e-3, escalation="fail")
    with pytest.raises(Exception) as excinfo:
        run_program(
            2, _pingpong(iters=1), cluster=CLUSTER,
            fault_injector=_always_drop_route(), resilience=pol,
        )
    # surfaces either directly (engine callback) or via ProcessFailed
    err = excinfo.value
    assert isinstance(err, ResilienceExhausted) or isinstance(
        getattr(err, "__cause__", None), ResilienceExhausted
    ) or "ResilienceExhausted" in repr(err)


def test_escalation_plain_fallback_completes():
    pol = ResiliencePolicy(
        max_retries=2, timeout=1e-3, escalation="plain_fallback"
    )
    res = run_program(
        2, _pingpong(iters=2), cluster=CLUSTER,
        fault_injector=_always_drop_route(), resilience=pol,
    )
    # the fallback copy bypasses the injector, so the data arrives
    assert res.results[1] == [b"\xab" * 64] * 2
    rep = res.resilience
    assert rep.fallbacks == rep.gave_up == 2
    assert rep.retransmits == 2 * pol.max_retries


def test_escalation_drop_abandons_without_error():
    # rank 1 never blocks on the dropped message, so "drop" must neither
    # raise nor deadlock; the receiver simply never sees the payload.
    pol = ResiliencePolicy(max_retries=1, timeout=1e-3, escalation="drop")

    def program(ctx):
        if ctx.rank == 0:
            ctx.comm.send(b"\x01" * 16, 1, tag=TAG_DATA)
        return ctx.rank

    res = run_program(
        2, program, cluster=CLUSTER,
        fault_injector=_always_drop_route(), resilience=pol,
    )
    assert res.results == [0, 1]
    rep = res.resilience
    assert rep.gave_up == 1
    assert rep.fallbacks == 0


# -- determinism ---------------------------------------------------------------


def test_faulty_resilient_run_is_deterministic():
    plan = FaultPlan(drop=0.2, corrupt=0.1, seed=9)

    def one():
        rec = TraceRecorder()
        res = run_program(
            2, _enc_pingpong(iters=8), cluster=CLUSTER, trace=rec,
            fault_injector=plan.build(), resilience=POLICY, sanitize=True,
        )
        return res.duration, res.resilience, rec.digest()

    assert one() == one()
