"""Point-to-point semantics tests for the simulated MPI."""

import pytest

from repro.des.engine import DeadlockError
from repro.des.process import ProcessFailed
from repro.models.cpu import ClusterSpec, TWO_NODE_CLUSTER
from repro.simmpi import ANY_SOURCE, ANY_TAG, run_program
from repro.util.units import KiB, MiB

SMALL_CLUSTER = ClusterSpec(nodes=2, cores_per_node=4)


def test_blocking_send_recv_delivers_payload():
    payload = b"hello mpi"

    def prog(ctx):
        if ctx.rank == 0:
            ctx.comm.send(payload, 1, tag=3)
        else:
            data, status = ctx.comm.recv(0, 3)
            assert data == payload
            assert status.source == 0
            assert status.tag == 3
            assert status.count == len(payload)
            return data

    res = run_program(2, prog, cluster=TWO_NODE_CLUSTER)
    assert res.results[1] == payload


def test_send_to_self():
    def prog(ctx):
        req = ctx.comm.irecv(0, 5)
        ctx.comm.send(b"me", 0, tag=5)
        return req.wait()

    res = run_program(1, prog, cluster=ClusterSpec(1, 2))
    assert res.results[0] == b"me"


def test_any_source_any_tag():
    def prog(ctx):
        if ctx.rank == 0:
            data, status = ctx.comm.recv(ANY_SOURCE, ANY_TAG)
            return (data, status.source, status.tag)
        ctx.comm.send(b"from1", 0, tag=42)

    res = run_program(2, prog, cluster=TWO_NODE_CLUSTER)
    assert res.results[0] == (b"from1", 1, 42)


def test_tag_selectivity():
    """A recv for tag 2 must not match a tag-1 message even if it
    arrived first."""

    def prog(ctx):
        if ctx.rank == 0:
            ctx.comm.send(b"one", 1, tag=1)
            ctx.comm.send(b"two", 1, tag=2)
        else:
            two, _status = ctx.comm.recv(0, 2)
            one, _status = ctx.comm.recv(0, 1)
            return (one, two)

    res = run_program(2, prog, cluster=TWO_NODE_CLUSTER)
    assert res.results[1] == (b"one", b"two")


def test_non_overtaking_same_tag():
    """MPI guarantee: same (src, dst, tag) messages match in send order."""

    def prog(ctx):
        n = 10
        if ctx.rank == 0:
            for i in range(n):
                ctx.comm.send(bytes([i]), 1, tag=0)
        else:
            got = [ctx.comm.recv(0, 0)[0][0] for _ in range(n)]
            return got

    res = run_program(2, prog, cluster=TWO_NODE_CLUSTER)
    assert res.results[1] == list(range(10))


def test_mixed_sizes_non_overtaking():
    """A big (slow) message sent before a small one still matches first."""

    def prog(ctx):
        if ctx.rank == 0:
            ctx.comm.send(b"B" * (256 * KiB), 1, tag=0)  # rendezvous
            ctx.comm.send(b"s", 1, tag=0)  # eager
        else:
            first, _stat = ctx.comm.recv(0, 0)
            second, _stat = ctx.comm.recv(0, 0)
            return (len(first), len(second))

    res = run_program(2, prog, cluster=TWO_NODE_CLUSTER)
    assert res.results[1] == (256 * KiB, 1)


def test_isend_irecv_waitall():
    def prog(ctx):
        if ctx.rank == 0:
            reqs = [ctx.comm.isend(bytes([i]), 1, tag=i) for i in range(5)]
            ctx.comm.waitall(reqs)
        else:
            reqs = [ctx.comm.irecv(0, i) for i in range(5)]
            values = ctx.comm.waitall(reqs)
            return [v[0] for v in values]

    res = run_program(2, prog, cluster=TWO_NODE_CLUSTER)
    assert res.results[1] == [0, 1, 2, 3, 4]


def test_request_completed_flag():
    def prog(ctx):
        if ctx.rank == 0:
            req = ctx.comm.irecv(1, 0)
            assert not req.completed
            data = req.wait()
            assert req.completed
            return data
        ctx.comm.send(b"done", 0, tag=0)

    res = run_program(2, prog, cluster=TWO_NODE_CLUSTER)
    assert res.results[0] == b"done"


def test_sendrecv_exchanges_without_deadlock():
    def prog(ctx):
        other = 1 - ctx.rank
        data, _status = ctx.comm.sendrecv(
            f"from{ctx.rank}".encode(), other, other, 9, 9
        )
        return data

    res = run_program(2, prog, cluster=TWO_NODE_CLUSTER)
    assert res.results == [b"from1", b"from0"]


def test_head_to_head_rendezvous_sends_deadlock():
    """Two blocking large sends at each other: a real MPI hang, which
    the simulator must surface as DeadlockError."""
    big = b"x" * (1 * MiB)

    def prog(ctx):
        other = 1 - ctx.rank
        ctx.comm.send(big, other, tag=0)
        ctx.comm.recv(other, 0)

    with pytest.raises((DeadlockError, ProcessFailed)):
        run_program(2, prog, cluster=TWO_NODE_CLUSTER)


def test_eager_sends_do_not_deadlock_head_to_head():
    """Small sends are buffered: head-to-head blocking sends complete."""

    def prog(ctx):
        other = 1 - ctx.rank
        ctx.comm.send(b"tiny", other, tag=0)
        data, _status = ctx.comm.recv(other, 0)
        return data

    res = run_program(2, prog, cluster=TWO_NODE_CLUSTER)
    assert res.results == [b"tiny", b"tiny"]


def test_rendezvous_waits_for_receiver():
    """A large send cannot complete before the matching recv is posted."""
    big_size = 1 * MiB
    times = {}

    def prog(ctx):
        if ctx.rank == 0:
            t0 = ctx.now
            ctx.comm.send(b"z" * big_size, 1, tag=0)
            times["send_done"] = ctx.now - t0
        else:
            ctx.compute(5e-3)  # receiver busy for 5 ms before posting
            data, _status = ctx.comm.recv(0, 0)
            times["recv_done"] = ctx.now

    run_program(2, prog, cluster=TWO_NODE_CLUSTER)
    # The sender was held up by the late receiver: its send took at
    # least the receiver's 5 ms delay.
    assert times["send_done"] >= 5e-3


def test_eager_send_returns_before_receiver_posts():
    def prog(ctx):
        if ctx.rank == 0:
            t0 = ctx.now
            ctx.comm.send(b"e" * 512, 1, tag=0)
            return ctx.now - t0
        ctx.compute(5e-3)
        ctx.comm.recv(0, 0)

    res = run_program(2, prog, cluster=TWO_NODE_CLUSTER)
    assert res.results[0] < 1e-3  # returned long before the 5 ms


def test_validation_errors():
    def bad_peer(ctx):
        ctx.comm.send(b"x", 5)

    with pytest.raises(ProcessFailed):
        run_program(2, bad_peer, cluster=TWO_NODE_CLUSTER)

    def bad_tag(ctx):
        ctx.comm.send(b"x", 0, tag=-3)

    with pytest.raises(ProcessFailed):
        run_program(2, bad_tag, cluster=TWO_NODE_CLUSTER)

    def bad_payload(ctx):
        ctx.comm.send(12345, 0)

    with pytest.raises(ProcessFailed):
        run_program(2, bad_payload, cluster=TWO_NODE_CLUSTER)


def test_recv_without_send_is_deadlock():
    def prog(ctx):
        if ctx.rank == 0:
            ctx.comm.recv(1, 0)

    with pytest.raises(DeadlockError):
        run_program(2, prog, cluster=TWO_NODE_CLUSTER)


def test_intra_node_faster_than_inter_node():
    def make(peer_a, peer_b):
        def prog(ctx):
            if ctx.rank == peer_a:
                t0 = ctx.now
                ctx.comm.send(b"x" * 4096, peer_b, tag=0)
                ctx.comm.recv(peer_b, 0)
                return ctx.now - t0
            if ctx.rank == peer_b:
                data, _status = ctx.comm.recv(peer_a, 0)
                ctx.comm.send(data, peer_a, tag=0)

        return prog

    spec = ClusterSpec(nodes=2, cores_per_node=4)
    # ranks 0-3 on node 0, 4-7 on node 1
    intra = run_program(8, make(0, 1), cluster=spec).results[0]
    inter = run_program(8, make(0, 4), cluster=spec).results[0]
    assert intra < inter
