"""Tests for the numeric reduction operator library."""

import numpy as np
import pytest

from repro.models.cpu import ClusterSpec
from repro.simmpi import ops, run_program

CLUSTER = ClusterSpec(2, 4)


def test_roundtrip_serialization():
    arr = np.arange(12, dtype=np.float64).reshape(3, 4)
    data = ops.to_bytes(arr)
    back = ops.from_array(data, np.float64, shape=(3, 4))
    assert np.array_equal(arr, back)
    assert back.flags.writeable  # a real copy, not a frozen view


def test_sum_and_prod():
    a = np.array([1.0, 2.0, 3.0])
    b = np.array([4.0, 5.0, 6.0])
    s = ops.from_array(ops.sum_op()(ops.to_bytes(a), ops.to_bytes(b)), np.float64)
    p = ops.from_array(ops.prod_op()(ops.to_bytes(a), ops.to_bytes(b)), np.float64)
    assert np.array_equal(s, [5.0, 7.0, 9.0])
    assert np.array_equal(p, [4.0, 10.0, 18.0])


def test_max_min():
    a = np.array([1, 9], dtype=np.int64)
    b = np.array([5, 2], dtype=np.int64)
    mx = ops.from_array(
        ops.max_op(np.int64)(ops.to_bytes(a), ops.to_bytes(b)), np.int64
    )
    mn = ops.from_array(
        ops.min_op(np.int64)(ops.to_bytes(a), ops.to_bytes(b)), np.int64
    )
    assert list(mx) == [5, 9]
    assert list(mn) == [1, 2]


def test_logical_and_bitwise():
    a = np.array([1, 0, 1], dtype=np.uint8)
    b = np.array([1, 1, 0], dtype=np.uint8)
    land = ops.from_array(ops.land_op()(ops.to_bytes(a), ops.to_bytes(b)), np.uint8)
    lor = ops.from_array(ops.lor_op()(ops.to_bytes(a), ops.to_bytes(b)), np.uint8)
    assert list(land) == [1, 0, 0]
    assert list(lor) == [1, 1, 1]
    x = np.array([0b1100], dtype=np.uint64)
    y = np.array([0b1010], dtype=np.uint64)
    assert ops.from_array(
        ops.band_op()(ops.to_bytes(x), ops.to_bytes(y)), np.uint64
    )[0] == 0b1000
    assert ops.from_array(
        ops.bor_op()(ops.to_bytes(x), ops.to_bytes(y)), np.uint64
    )[0] == 0b1110


def test_length_mismatch_rejected():
    with pytest.raises(ValueError):
        ops.sum_op()(bytes(8), bytes(16))


def test_ops_through_allreduce():
    def prog(ctx):
        vec = np.array([ctx.rank, 10.0 * ctx.rank], dtype=np.float64)
        total = ctx.comm.allreduce(ops.to_bytes(vec), ops.sum_op())
        peak = ctx.comm.allreduce(ops.to_bytes(vec), ops.max_op())
        return (
            list(ops.from_array(total, np.float64)),
            list(ops.from_array(peak, np.float64)),
        )

    results = run_program(4, prog, cluster=CLUSTER).results
    assert all(r == ([6.0, 60.0], [3.0, 30.0]) for r in results)
