"""Differential runtime suite: threads vs coroutines, byte for byte.

The coroutine rank runtime is only admissible because it is
*observationally identical* to the thread runtime: same virtual times,
same event streams, same artifacts.  This suite pins that equivalence
on the golden workloads and cheap experiment cells, plus the
EngineOptions enforcement edges (strict-coroutines rejection of plain
rank functions, the max_ranks ceiling, and the cryptmpi pipeline's
threads-only constraint).
"""

import pytest

import repro.api as api
from repro.des.options import EngineOptions, set_default_engine_options
from repro.experiments import goldens
from repro.models.cpu import parse_cluster_spec
from repro.simmpi.world import run_program

CLUSTER = parse_cluster_spec("2x4")


@pytest.fixture(params=["threads", "coroutines"])
def runtime(request):
    """Run the test body once per runtime via the process-wide default."""
    prev = set_default_engine_options(EngineOptions(runtime=request.param))
    try:
        yield request.param
    finally:
        set_default_engine_options(prev)


def _force(runtime_name: str):
    return EngineOptions(runtime=runtime_name)


# ------------------------------------------------------------- golden runs

@pytest.mark.parametrize("name", sorted(goldens.GOLDEN_RUNS))
def test_golden_digests_identical_across_runtimes(name):
    """The strongest parity check: full structured event streams."""
    prev = set_default_engine_options(_force("threads"))
    try:
        threads = goldens.run_golden(name)
    finally:
        set_default_engine_options(prev)
    prev = set_default_engine_options(_force("coroutines"))
    try:
        coros = goldens.run_golden(name)
    finally:
        set_default_engine_options(prev)
    assert threads.canonical_lines() == coros.canonical_lines()
    assert threads.digest() == coros.digest()


# ------------------------------------------------------------ cheap cells

def _pingpong(ctx):
    if ctx.rank == 0:
        ctx.comm.send(b"x" * 512, 1, tag=1)
        ctx.comm.recv(1, 1)
    else:
        ctx.comm.recv(0, 1)
        ctx.comm.send(b"y" * 512, 0, tag=1)
    return ctx.now


def _co_pingpong(ctx):
    if ctx.rank == 0:
        yield from ctx.comm.co_send(b"x" * 512, 1, tag=1)
        yield from ctx.comm.co_recv(1, 1)
    else:
        yield from ctx.comm.co_recv(0, 1)
        yield from ctx.comm.co_send(b"y" * 512, 0, tag=1)
    return ctx.now


def test_generator_workload_identical_on_both_runtimes():
    a = run_program(2, _co_pingpong, cluster=CLUSTER, engine=_force("threads"))
    b = run_program(2, _co_pingpong, cluster=CLUSTER,
                    engine=_force("coroutines"))
    assert a.results == b.results
    assert a.duration == b.duration
    assert a.spans == b.spans


def test_generator_and_plain_spellings_agree():
    """The blocking spelling is derived from the generator one —
    run_blocking interprets the same generators — so a plain-function
    rank on threads must land on the same virtual times."""
    plain = run_program(2, _pingpong, cluster=CLUSTER,
                        engine=_force("threads"))
    gen = run_program(2, _co_pingpong, cluster=CLUSTER,
                      engine=_force("coroutines"))
    assert plain.results == gen.results
    assert plain.duration == gen.duration


def test_encrypted_job_identical_on_both_runtimes(runtime):
    result = api.run_job(
        _co_enc_exchange, nranks=2,
        security=api.SecurityConfig(library="boringssl"),
        options=api.RunOptions(cluster=CLUSTER),
    )
    # virtual time must not depend on the runtime: compare against the
    # values the other runtime parameter of this fixture produces
    _ENC_DURATIONS[runtime] = result.duration
    if len(_ENC_DURATIONS) == 2:
        assert _ENC_DURATIONS["threads"] == _ENC_DURATIONS["coroutines"]


_ENC_DURATIONS: dict[str, float] = {}


def _co_enc_exchange(ctx):
    if ctx.rank == 0:
        yield from ctx.enc.co_send(b"s" * 2048, 1, tag=3)
    else:
        yield from ctx.enc.co_recv(0, 3)
    yield from ctx.comm.co_barrier()
    return ctx.now


# -------------------------------------------------------- enforcement edges

def test_strict_coroutines_rejects_plain_rank_functions():
    with pytest.raises(TypeError, match="_pingpong"):
        run_program(2, _pingpong, cluster=CLUSTER,
                    engine=_force("coroutines"))


def test_max_ranks_ceiling_is_enforced():
    with pytest.raises(ValueError, match="max_ranks"):
        run_program(
            4, _co_pingpong, cluster=CLUSTER,
            engine=EngineOptions(runtime="coroutines", max_ranks=2),
        )


def test_auto_runtime_picks_by_program_kind():
    # generator program on auto: must run (coroutines), same answer
    auto = run_program(2, _co_pingpong, cluster=CLUSTER)
    threads = run_program(2, _co_pingpong, cluster=CLUSTER,
                          engine=_force("threads"))
    assert auto.duration == threads.duration


def test_cryptmpi_pipeline_requires_threads():
    """The chunk pipeline overlaps helper cores with a *blocked* rank
    thread; its co_ spellings refuse to run rather than deadlock."""
    plan = api.CryptoPlan(mode="cryptmpi", chunk_bytes=1024)

    def program(ctx):
        if ctx.rank == 0:
            yield from ctx.enc.co_send(b"z" * 4096, 1, tag=9)
        else:
            yield from ctx.enc.co_recv(0, 9)

    with pytest.raises(RuntimeError, match="threads"):
        api.run_job(
            program, nranks=2,
            security=api.SecurityConfig(library="boringssl", crypto=plan),
            options=api.RunOptions(cluster=parse_cluster_spec("2x8")),
        )
