"""Property-based tests: MPI semantics under randomized traffic."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models.cpu import ClusterSpec
from repro.simmpi import run_program

CLUSTER = ClusterSpec(nodes=2, cores_per_node=4)

# Sizes crossing all transport regimes: tiny eager, flow-cutoff eager,
# rendezvous.
size_strategy = st.sampled_from([0, 1, 100, 2048, 4096, 70_000, 200_000])


@settings(max_examples=15, deadline=None)
@given(sizes=st.lists(size_strategy, min_size=1, max_size=10))
def test_fifo_matching_for_any_size_sequence(sizes):
    """Same-route same-tag messages always match in send order,
    whatever mix of eager/flow/rendezvous sizes is sent."""

    def prog(ctx):
        if ctx.rank == 0:
            for i, s in enumerate(sizes):
                ctx.comm.send(bytes([i]) + b"\x00" * s, 1, tag=0)
        else:
            seen = []
            for _ in sizes:
                data, _status = ctx.comm.recv(0, 0)
                seen.append(data[0])
            return seen

    res = run_program(2, prog, cluster=CLUSTER)
    assert res.results[1] == list(range(len(sizes)))


@settings(max_examples=10, deadline=None)
@given(
    nranks=st.sampled_from([2, 3, 5, 8]),
    payloads=st.lists(st.binary(max_size=300), min_size=1, max_size=4),
)
def test_alltoall_is_a_transpose(nranks, payloads):
    """alltoall(chunks)[r][s] == chunks sent by s to r, for arbitrary
    payload contents and rank counts."""

    def prog(ctx):
        chunks = [
            bytes([ctx.rank, d]) + payloads[(ctx.rank + d) % len(payloads)]
            for d in range(nranks)
        ]
        return ctx.comm.alltoall(chunks)

    results = run_program(nranks, prog, cluster=ClusterSpec(2, 4)).results
    for r in range(nranks):
        for s in range(nranks):
            expected = bytes([s, r]) + payloads[(s + r) % len(payloads)]
            assert results[r][s] == expected


@settings(max_examples=10, deadline=None)
@given(
    nranks=st.sampled_from([2, 4, 7]),
    payload=st.binary(max_size=1000),
    root=st.integers(0, 6),
)
def test_bcast_delivers_exact_payload(nranks, payload, root):
    root = root % nranks

    def prog(ctx):
        data = payload if ctx.rank == root else None
        return ctx.comm.bcast(data, root, nbytes=len(payload))

    results = run_program(nranks, prog, cluster=ClusterSpec(2, 4)).results
    assert all(r == payload for r in results)


@settings(max_examples=12, deadline=None)
@given(
    nranks=st.sampled_from([2, 3, 4, 6, 8]),
    chunk=st.binary(max_size=400),
)
def test_allgather_matches_naive_reference(nranks, chunk):
    """allgather == every rank ends up with [data of rank 0..p-1],
    across both the recursive-doubling and ring algorithms."""

    def prog(ctx):
        return ctx.comm.allgather(bytes([ctx.rank]) + chunk)

    results = run_program(nranks, prog, cluster=ClusterSpec(2, 4)).results
    expected = [bytes([s]) + chunk for s in range(nranks)]
    assert all(r == expected for r in results)


def _xor(a: bytes, b: bytes) -> bytes:
    return bytes(x ^ y for x, y in zip(a, b))


@settings(max_examples=12, deadline=None)
@given(
    nranks=st.sampled_from([2, 3, 5, 8]),
    root=st.integers(0, 7),
    size=st.integers(1, 600),
)
def test_reduce_matches_naive_reference(nranks, root, size):
    """Tree reduce == folding the op over per-rank payloads in rank
    order, for any root."""
    root = root % nranks

    def prog(ctx):
        return ctx.comm.reduce(bytes([ctx.rank + 1]) * size, _xor, root=root)

    results = run_program(nranks, prog, cluster=ClusterSpec(2, 4)).results
    expected = bytes([0]) * size
    for r in range(nranks):
        expected = _xor(expected, bytes([r + 1]) * size)
    assert results[root] == expected
    assert all(results[r] is None for r in range(nranks) if r != root)


@settings(max_examples=12, deadline=None)
@given(
    nranks=st.sampled_from([2, 3, 4, 7]),
    root=st.integers(0, 6),
    payloads=st.lists(st.binary(max_size=200), min_size=1, max_size=3),
)
def test_gather_matches_naive_reference(nranks, root, payloads):
    """gather at any root == the identity list of per-rank payloads
    (unequal sizes included — the packing headers must not leak)."""
    root = root % nranks

    def prog(ctx):
        return ctx.comm.gather(payloads[ctx.rank % len(payloads)], root=root)

    results = run_program(nranks, prog, cluster=ClusterSpec(2, 4)).results
    expected = [payloads[r % len(payloads)] for r in range(nranks)]
    assert results[root] == expected
    assert all(results[r] is None for r in range(nranks) if r != root)


@settings(max_examples=8, deadline=None)
@given(seed_sizes=st.lists(st.integers(0, 50_000), min_size=2, max_size=6))
def test_makespan_is_deterministic(seed_sizes):
    """The same traffic pattern always yields the same virtual makespan."""

    def prog(ctx):
        other = 1 - ctx.rank
        for s in seed_sizes:
            if ctx.rank == 0:
                ctx.comm.send(b"\x00" * s, other, tag=1)
                ctx.comm.recv(other, 2)
            else:
                ctx.comm.recv(other, 1)
                ctx.comm.send(b"\x00" * s, other, tag=2)
        return ctx.now

    a = run_program(2, prog, cluster=CLUSTER).duration
    b = run_program(2, prog, cluster=CLUSTER).duration
    assert a == b
