"""Property-based tests: MPI semantics under randomized traffic."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models.cpu import ClusterSpec
from repro.simmpi import run_program

CLUSTER = ClusterSpec(nodes=2, cores_per_node=4)

# Sizes crossing all transport regimes: tiny eager, flow-cutoff eager,
# rendezvous.
size_strategy = st.sampled_from([0, 1, 100, 2048, 4096, 70_000, 200_000])


@settings(max_examples=15, deadline=None)
@given(sizes=st.lists(size_strategy, min_size=1, max_size=10))
def test_fifo_matching_for_any_size_sequence(sizes):
    """Same-route same-tag messages always match in send order,
    whatever mix of eager/flow/rendezvous sizes is sent."""

    def prog(ctx):
        if ctx.rank == 0:
            for i, s in enumerate(sizes):
                ctx.comm.send(bytes([i]) + b"\x00" * s, 1, tag=0)
        else:
            seen = []
            for _ in sizes:
                data, _status = ctx.comm.recv(0, 0)
                seen.append(data[0])
            return seen

    res = run_program(2, prog, cluster=CLUSTER)
    assert res.results[1] == list(range(len(sizes)))


@settings(max_examples=10, deadline=None)
@given(
    nranks=st.sampled_from([2, 3, 5, 8]),
    payloads=st.lists(st.binary(max_size=300), min_size=1, max_size=4),
)
def test_alltoall_is_a_transpose(nranks, payloads):
    """alltoall(chunks)[r][s] == chunks sent by s to r, for arbitrary
    payload contents and rank counts."""

    def prog(ctx):
        chunks = [
            bytes([ctx.rank, d]) + payloads[(ctx.rank + d) % len(payloads)]
            for d in range(nranks)
        ]
        return ctx.comm.alltoall(chunks)

    results = run_program(nranks, prog, cluster=ClusterSpec(2, 4)).results
    for r in range(nranks):
        for s in range(nranks):
            expected = bytes([s, r]) + payloads[(s + r) % len(payloads)]
            assert results[r][s] == expected


@settings(max_examples=10, deadline=None)
@given(
    nranks=st.sampled_from([2, 4, 7]),
    payload=st.binary(max_size=1000),
    root=st.integers(0, 6),
)
def test_bcast_delivers_exact_payload(nranks, payload, root):
    root = root % nranks

    def prog(ctx):
        data = payload if ctx.rank == root else None
        return ctx.comm.bcast(data, root, nbytes=len(payload))

    results = run_program(nranks, prog, cluster=ClusterSpec(2, 4)).results
    assert all(r == payload for r in results)


@settings(max_examples=8, deadline=None)
@given(seed_sizes=st.lists(st.integers(0, 50_000), min_size=2, max_size=6))
def test_makespan_is_deterministic(seed_sizes):
    """The same traffic pattern always yields the same virtual makespan."""

    def prog(ctx):
        other = 1 - ctx.rank
        for s in seed_sizes:
            if ctx.rank == 0:
                ctx.comm.send(b"\x00" * s, other, tag=1)
                ctx.comm.recv(other, 2)
            else:
                ctx.comm.recv(other, 1)
                ctx.comm.send(b"\x00" * s, other, tag=2)
        return ctx.now

    a = run_program(2, prog, cluster=CLUSTER).duration
    b = run_program(2, prog, cluster=CLUSTER).duration
    assert a == b
