"""Transport-layer tests: wire accounting, FIFO clamps, timing paths."""

import pytest

from repro.models.cpu import ClusterSpec, TWO_NODE_CLUSTER
from repro.models.network import ethernet_10g
from repro.simmpi import run_program
from repro.simmpi.transport import FLOW_CUTOFF
from repro.util.units import KiB, MiB


def test_wire_bytes_drive_timing_not_payload():
    """A message declared bigger on the wire (encrypted framing) must
    take longer than its payload alone would."""
    times = {}

    def make(wire_extra):
        def prog(ctx):
            if ctx.rank == 0:
                t0 = ctx.now
                ctx.comm.send(
                    b"x" * (16 * KiB), 1, tag=0,
                    wire_bytes=16 * KiB + wire_extra,
                )
                ctx.comm.recv(1, 0)
                times[wire_extra] = ctx.now - t0
            else:
                data, _status = ctx.comm.recv(0, 0)
                ctx.comm.send(b"y", 0, tag=0)

        return prog

    run_program(2, make(0), cluster=TWO_NODE_CLUSTER)
    run_program(2, make(64 * KiB), cluster=TWO_NODE_CLUSTER)
    assert times[64 * KiB] > times[0]


def test_flow_cutoff_constant_sane():
    net = ethernet_10g()
    assert 0 < FLOW_CUTOFF <= net.eager_threshold


def test_route_fifo_under_reordering_pressure():
    """Many same-route messages of wildly mixed sizes still arrive (and
    match) in send order."""
    sizes = [1, 128 * KiB, 4, 1 * MiB, 64, 2 * KiB, 256 * KiB, 2]

    def prog(ctx):
        if ctx.rank == 0:
            for i, s in enumerate(sizes):
                ctx.comm.send(bytes([i]) * max(s, 1), 1, tag=0)
        else:
            order = []
            for _ in sizes:
                data, _status = ctx.comm.recv(0, 0)
                order.append(data[0])
            return order

    res = run_program(2, prog, cluster=TWO_NODE_CLUSTER)
    assert res.results[1] == list(range(len(sizes)))


def test_concurrent_pairs_slower_than_isolated_large():
    """Two 2MB streams sharing a NIC take longer than one (flow model)."""
    def one_pair(ctx):
        if ctx.rank == 0:
            t0 = ctx.now
            ctx.comm.send(b"z" * (2 * MiB), 1, tag=0)
            return ctx.now - t0
        ctx.comm.recv(0, 0)

    def two_pairs(ctx):
        spec = {0: 2, 1: 3}
        if ctx.rank in spec:
            t0 = ctx.now
            ctx.comm.send(b"z" * (2 * MiB), spec[ctx.rank], tag=0)
            return ctx.now - t0
        if ctx.rank >= 2:
            ctx.comm.recv(ctx.rank - 2, 0)

    spec = ClusterSpec(nodes=2, cores_per_node=4)
    # placement: ranks 0-1 node0? block placement of 4 ranks over 2 nodes
    # puts 0,1 on node 0 and 2,3 on node 1 — senders share node 0's NIC.
    t1 = run_program(2, one_pair, cluster=spec).results[0]
    res2 = run_program(4, two_pairs, cluster=spec).results
    t2 = max(r for r in res2 if r is not None)
    assert t2 > 1.5 * t1


def test_nic_engine_serializes_small_message_injection():
    """A node's ranks injecting simultaneously share the NIC engine."""
    spec = ClusterSpec(nodes=2, cores_per_node=8)
    n_msgs = 200

    def prog(ctx):
        senders = 4
        if ctx.rank < senders:
            peer = ctx.rank + senders
            t0 = ctx.now
            reqs = [ctx.comm.isend(b"m", peer, tag=0) for _ in range(n_msgs)]
            ctx.comm.waitall(reqs)
            return ctx.now - t0
        peer = ctx.rank - senders
        ctx.comm.waitall([ctx.comm.irecv(peer, 0) for _ in range(n_msgs)])

    res = run_program(8, prog, cluster=spec).results
    concurrent = max(r for r in res[:4])

    def prog_single(ctx):
        if ctx.rank == 0:
            t0 = ctx.now
            reqs = [ctx.comm.isend(b"m", 1, tag=0) for _ in range(n_msgs)]
            ctx.comm.waitall(reqs)
            return ctx.now - t0
        ctx.comm.waitall([ctx.comm.irecv(0, 0) for _ in range(n_msgs)])

    single = run_program(2, prog_single, cluster=spec).results[0]
    assert concurrent >= single  # sharing never helps injection


def test_self_message_stays_cheap():
    def prog(ctx):
        t0 = ctx.now
        req = ctx.comm.irecv(0, 1)
        ctx.comm.send(b"self" * 100, 0, tag=1)
        req.wait()
        return ctx.now - t0

    res = run_program(1, prog, cluster=ClusterSpec(1, 2))
    assert res.results[0] < 10e-6
