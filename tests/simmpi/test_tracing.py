"""Tests for the communication tracing facility."""

import pytest

from repro.models.cpu import ClusterSpec
from repro.simmpi import run_program
from repro.simmpi.tracing import CommTrace

CLUSTER = ClusterSpec(nodes=2, cores_per_node=4)


def _traced(prog, nranks=2):
    res = run_program(nranks, prog, cluster=CLUSTER, trace=True)
    assert res.trace is not None
    return res.trace


def test_p2p_traffic_recorded():
    def prog(ctx):
        if ctx.rank == 0:
            ctx.comm.send(b"x" * 100, 1, tag=0)
            ctx.comm.send(b"y" * 50, 1, tag=0)
        else:
            ctx.comm.recv(0, 0)
            ctx.comm.recv(0, 0)

    trace = _traced(prog)
    assert trace.total_messages == 2
    assert trace.total_payload_bytes == 150
    assert trace.routes[(0, 1)].messages == 2
    assert trace.bytes_sent_by(0) == 150
    assert trace.bytes_received_by(1) == 150
    assert trace.bytes_sent_by(1) == 0


def test_wire_overhead_fraction_tracks_encryption():
    from repro.encmpi import EncryptedComm, SecurityConfig

    def prog(ctx):
        enc = EncryptedComm(ctx, SecurityConfig(crypto_mode="modeled"))
        if ctx.rank == 0:
            enc.send(b"z" * 1000, 1)
        else:
            enc.recv(0)

    trace = _traced(prog)
    # The frame (nonce||pt||tag) IS the MPI-level payload: 1000+28.
    assert trace.total_wire_bytes == trace.total_payload_bytes == 1028
    assert trace.routes[(0, 1)].wire_bytes == 1028


def test_matrix_and_heaviest_routes():
    def prog(ctx):
        if ctx.rank == 0:
            ctx.comm.send(b"a" * 10, 1, tag=0)
        elif ctx.rank == 1:
            ctx.comm.recv(0, 0)
            ctx.comm.send(b"b" * 99, 2, tag=0)
        elif ctx.rank == 2:
            ctx.comm.recv(1, 0)

    trace = _traced(prog, nranks=3)
    m = trace.matrix(3)
    assert m[0][1] == 10
    assert m[1][2] == 99
    assert trace.heaviest_routes(1)[0][0] == (1, 2)


def test_size_histogram_buckets():
    trace = CommTrace()
    trace.record(0, 1, 0, 0)
    trace.record(0, 1, 1, 29)
    trace.record(0, 1, 1024, 1052)
    trace.record(0, 1, 1500, 1528)
    assert trace.size_histogram[-1] == 1
    assert trace.size_histogram[0] == 1
    assert trace.size_histogram[10] == 2  # 1024 and 1500 share 2^10


def test_render_is_readable():
    trace = CommTrace()
    trace.record(0, 1, 100, 128)
    out = trace.render()
    assert "messages: 1" in out
    assert "0->1" in out
    assert trace.wire_overhead_fraction() == pytest.approx(0.28)


def test_collectives_are_traced():
    def prog(ctx):
        ctx.comm.allgather(b"g" * 64)

    trace = _traced(prog, nranks=4)
    assert trace.total_messages > 0
    # Every rank both sends and receives in an allgather.
    for r in range(4):
        assert trace.bytes_sent_by(r) > 0


def test_no_trace_by_default():
    def prog(ctx):
        return None

    res = run_program(1, prog, cluster=ClusterSpec(1, 1))
    assert res.trace is None
