"""Tests for the communication tracing facility."""

import json

import pytest

from repro.models.cpu import ClusterSpec
from repro.simmpi import run_program
from repro.simmpi.tracing import CommTrace, TraceRecorder, resolve_trace

CLUSTER = ClusterSpec(nodes=2, cores_per_node=4)


def _traced(prog, nranks=2):
    res = run_program(nranks, prog, cluster=CLUSTER, trace=True)
    assert res.trace is not None
    return res.trace


def test_p2p_traffic_recorded():
    def prog(ctx):
        if ctx.rank == 0:
            ctx.comm.send(b"x" * 100, 1, tag=0)
            ctx.comm.send(b"y" * 50, 1, tag=0)
        else:
            ctx.comm.recv(0, 0)
            ctx.comm.recv(0, 0)

    trace = _traced(prog)
    assert trace.total_messages == 2
    assert trace.total_payload_bytes == 150
    assert trace.routes[(0, 1)].messages == 2
    assert trace.bytes_sent_by(0) == 150
    assert trace.bytes_received_by(1) == 150
    assert trace.bytes_sent_by(1) == 0


def test_wire_overhead_fraction_tracks_encryption():
    from repro.encmpi import EncryptedComm, SecurityConfig

    def prog(ctx):
        enc = EncryptedComm(ctx, SecurityConfig(crypto_mode="modeled"))
        if ctx.rank == 0:
            enc.send(b"z" * 1000, 1)
        else:
            enc.recv(0)

    trace = _traced(prog)
    # The frame (nonce||pt||tag) IS the MPI-level payload: 1000+28.
    assert trace.total_wire_bytes == trace.total_payload_bytes == 1028
    assert trace.routes[(0, 1)].wire_bytes == 1028


def test_matrix_and_heaviest_routes():
    def prog(ctx):
        if ctx.rank == 0:
            ctx.comm.send(b"a" * 10, 1, tag=0)
        elif ctx.rank == 1:
            ctx.comm.recv(0, 0)
            ctx.comm.send(b"b" * 99, 2, tag=0)
        elif ctx.rank == 2:
            ctx.comm.recv(1, 0)

    trace = _traced(prog, nranks=3)
    m = trace.matrix(3)
    assert m[0][1] == 10
    assert m[1][2] == 99
    assert trace.heaviest_routes(1)[0][0] == (1, 2)


def test_size_histogram_buckets():
    trace = CommTrace()
    trace.record(0, 1, 0, 0)
    trace.record(0, 1, 1, 29)
    trace.record(0, 1, 1024, 1052)
    trace.record(0, 1, 1500, 1528)
    assert trace.size_histogram[-1] == 1
    assert trace.size_histogram[0] == 1
    assert trace.size_histogram[10] == 2  # 1024 and 1500 share 2^10


def test_render_is_readable():
    trace = CommTrace()
    trace.record(0, 1, 100, 128)
    out = trace.render()
    assert "messages: 1" in out
    assert "0->1" in out
    assert trace.wire_overhead_fraction() == pytest.approx(0.28)


def test_collectives_are_traced():
    def prog(ctx):
        ctx.comm.allgather(b"g" * 64)

    trace = _traced(prog, nranks=4)
    assert trace.total_messages > 0
    # Every rank both sends and receives in an allgather.
    for r in range(4):
        assert trace.bytes_sent_by(r) > 0


def test_no_trace_by_default():
    def prog(ctx):
        return None

    res = run_program(1, prog, cluster=ClusterSpec(1, 1))
    assert res.trace is None


# ---------------------------------------------------------------------------
# collective byte accounting (regression)
# ---------------------------------------------------------------------------

# Collectives that length-prefix their internal payloads (gather,
# scatter, recursive-doubling allgather, reduce_scatter) used to record
# the packed length as payload_bytes while wire_bytes excluded the
# headers, making payload > wire and wire_overhead_fraction negative.
# Recording now happens once, at the transport, from
# Envelope.payload_bytes — so plain-MPI collectives account exactly like
# plain-MPI point-to-point: payload == wire.


def _xor(a: bytes, b: bytes) -> bytes:
    return bytes(x ^ y for x, y in zip(a, b))


@pytest.mark.parametrize(
    "collective",
    [
        lambda ctx: ctx.comm.gather(bytes([ctx.rank]) * 100, root=0),
        lambda ctx: ctx.comm.scatter(
            [bytes([i]) * 100 for i in range(4)] if ctx.rank == 0 else None,
            root=0,
        ),
        lambda ctx: ctx.comm.allgather(b"g" * 100),
        lambda ctx: ctx.comm.reduce_scatter([b"\x01" * 64] * 4, _xor),
        lambda ctx: ctx.comm.alltoall([bytes([ctx.rank, d]) * 32 for d in range(4)]),
    ],
    ids=["gather", "scatter", "allgather", "reduce_scatter", "alltoall"],
)
def test_collective_accounting_matches_p2p(collective):
    trace = _traced(collective, nranks=4)
    assert trace.total_messages > 0
    # Plain MPI: no framing overhead, at the transport or anywhere else.
    assert trace.total_payload_bytes == trace.total_wire_bytes
    assert trace.wire_overhead_fraction() == 0.0


def test_p2p_and_collective_byte_accounting_agree():
    """Moving the same logical bytes root->all via bcast or via explicit
    sends must charge identical payload totals."""
    nbytes = 4096

    def via_bcast(ctx):
        data = b"b" * nbytes if ctx.rank == 0 else None
        ctx.comm.bcast(data, 0, nbytes=nbytes)

    def via_sends(ctx):
        if ctx.rank == 0:
            for peer in (1, 2, 3):
                ctx.comm.send(b"b" * nbytes, peer, tag=0)
        else:
            ctx.comm.recv(0, 0)

    t_coll = _traced(via_bcast, nranks=4)
    t_p2p = _traced(via_sends, nranks=4)
    # The binomial tree moves exactly p-1 copies of the payload, same as
    # the explicit star — and both sides count pure data bytes.
    assert t_coll.total_payload_bytes == t_p2p.total_payload_bytes
    assert t_coll.total_wire_bytes == t_p2p.total_wire_bytes


# ---------------------------------------------------------------------------
# structured event recording (TraceRecorder)
# ---------------------------------------------------------------------------


def _recorded(prog, nranks=2, **kw):
    res = run_program(nranks, prog, cluster=CLUSTER, trace="events", **kw)
    assert isinstance(res.trace, TraceRecorder)
    return res.trace


def test_trace_events_records_all_plain_layers():
    def prog(ctx):
        ctx.comm.allgather(b"e" * 64)

    rec = _recorded(prog, nranks=4)
    assert {"engine", "transport", "collective"} <= rec.layers()
    counts = rec.kind_counts()
    assert counts["proc_start"] == counts["proc_end"] == 4
    assert counts["coll_begin"] == counts["coll_end"] == 4
    assert counts["job_start"] == counts["job_end"] == 1
    assert counts["wire_end"] == counts["send_posted"]


def test_recorder_embeds_the_comm_trace_view():
    def prog(ctx):
        if ctx.rank == 0:
            ctx.comm.send(b"x" * 100, 1, tag=0)
        else:
            ctx.comm.recv(0, 0)

    rec = _recorded(prog)
    assert rec.comm.total_messages == 1
    assert rec.comm.total_payload_bytes == 100
    c = rec.counters_snapshot()
    assert c[0]["messages_sent"] == 1
    assert c[0]["payload_bytes_sent"] == 100
    assert c[1]["messages_received"] == 1


def test_rendezvous_transfer_is_traced():
    size = 200_000  # far past the eager threshold

    def prog(ctx):
        if ctx.rank == 0:
            ctx.comm.send(b"r" * size, 1, tag=0)
        else:
            ctx.comm.recv(0, 0)

    rec = _recorded(prog)
    assert len(rec.events_in("transport", "rts_delivered")) == 1
    (wire_end,) = rec.events_in("transport", "wire_end")
    assert wire_end.data["wire"] == size
    (send,) = rec.events_in("transport", "send_posted")
    assert send.data["path"] == "rendezvous"


def test_events_are_time_ordered():
    def prog(ctx):
        if ctx.rank == 0:
            ctx.comm.send(b"t" * 512, 1, tag=0)
        else:
            ctx.comm.recv(0, 0)

    rec = _recorded(prog)
    times = [e.t for e in rec.events]
    assert times == sorted(times)


def test_jsonl_export_round_trips():
    def prog(ctx):
        ctx.comm.barrier()

    rec = _recorded(prog, nranks=2)
    lines = rec.to_jsonl().splitlines()
    assert len(lines) == len(rec.events)
    parsed = [json.loads(line) for line in lines]
    assert all({"t", "layer", "kind", "rank"} <= set(p) for p in parsed)


def test_chrome_trace_spans_are_balanced():
    def prog(ctx):
        ctx.comm.allgather(b"c" * 32)

    rec = _recorded(prog, nranks=4)
    doc = rec.to_chrome_trace()
    evs = doc["traceEvents"]
    assert sum(1 for e in evs if e["ph"] == "B") == sum(
        1 for e in evs if e["ph"] == "E"
    )
    # every rank got process metadata
    pids = {e["pid"] for e in evs if e["ph"] == "M" and e["name"] == "process_name"}
    assert {0, 1, 2, 3} <= pids


def test_recorder_cannot_span_two_jobs():
    rec = TraceRecorder()

    def prog(ctx):
        return None

    run_program(1, prog, cluster=ClusterSpec(1, 1), trace=rec)
    with pytest.raises(RuntimeError, match="fresh recorder"):
        run_program(1, prog, cluster=ClusterSpec(1, 1), trace=rec)


def test_resolve_trace_contract():
    assert resolve_trace(False) == (None, None)
    assert resolve_trace(None) == (None, None)
    rec, comm = resolve_trace(True)
    assert rec is None and isinstance(comm, CommTrace)
    rec, comm = resolve_trace("events")
    assert isinstance(rec, TraceRecorder) and comm is rec.comm
    mine = TraceRecorder()
    assert resolve_trace(mine) == (mine, mine.comm)
    with pytest.raises(TypeError):
        resolve_trace(42)
