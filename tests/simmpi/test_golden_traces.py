"""Golden-trace determinism harness.

The committed fixture (``tests/goldens/golden_traces.json``) pins the
SHA-256 of each canonical run's event stream.  A digest mismatch means
the simulation's observable behavior changed: either a bug (accidental
nondeterminism, reordered events, leaked host state) or an intentional
change — in which case regenerate with ``make trace-goldens`` and let
the reviewer see the digest move.
"""

import os

import pytest

from repro.experiments import goldens

FIXTURE = os.path.join(
    os.path.dirname(__file__), os.pardir, "goldens", "golden_traces.json"
)


@pytest.fixture(scope="module")
def fixture_doc():
    return goldens.load_fixture(FIXTURE)


def test_fixture_covers_every_golden(fixture_doc):
    assert set(fixture_doc["runs"]) == set(goldens.GOLDEN_RUNS)


@pytest.mark.parametrize("name", sorted(goldens.GOLDEN_RUNS))
def test_trace_is_byte_identical_across_runs_and_matches_fixture(
    name, fixture_doc
):
    first = goldens.run_golden(name)
    second = goldens.run_golden(name)
    # Byte-identical canonical serialization across back-to-back runs in
    # one process: no global state (nonce counters, sequence numbers,
    # caches) may leak between jobs.
    assert first.canonical_lines() == second.canonical_lines()
    committed = fixture_doc["runs"][name]
    assert len(first.events) == committed["events"]
    assert first.digest() == committed["digest"], (
        f"golden {name!r} drifted from the committed fixture; if the "
        "change is intentional run `make trace-goldens` and commit the "
        "new digest"
    )


@pytest.mark.parametrize("backend", ["pure", "chacha", "openssl"])
def test_encrypted_golden_digest_is_backend_independent(backend, fixture_doc):
    """Which AEAD implementation does the byte-work is a host property;
    the virtual-time trace must not see it."""
    from repro.crypto.aead import available_backends

    if backend not in available_backends():
        pytest.skip(f"backend {backend} not available")
    rec = goldens.run_golden("enc_multipair", backend=backend)
    assert rec.digest() == fixture_doc["runs"]["enc_multipair"]["digest"]


def test_encrypted_golden_touches_every_traced_layer():
    rec = goldens.run_golden("enc_multipair")
    assert {"engine", "transport", "collective", "aead"} <= rec.layers()


def test_golden_counters_are_symmetric():
    """The multipair exchange is symmetric, so per-rank counters are too."""
    rec = goldens.run_golden("enc_multipair")
    snaps = list(rec.counters_snapshot().values())
    assert len(snaps) == 4
    assert all(s == snaps[0] for s in snaps[1:])
    assert snaps[0]["aead_seals"] > 0
    assert snaps[0]["nonces_consumed"] == snaps[0]["aead_seals"]


def test_unknown_golden_name_raises():
    with pytest.raises(KeyError, match="unknown golden"):
        goldens.run_golden("nope")
