"""Tests for the paper's statistics methodology."""

import itertools

import pytest

from repro.util.stats import (
    RunStats,
    SeriesStats,
    overhead_percent,
    paper_methodology_mean,
    total_time_overhead_percent,
)


def test_runstats_basics():
    s = RunStats((1.0, 2.0, 3.0))
    assert s.n == 3
    assert s.mean == pytest.approx(2.0)
    assert s.stddev == pytest.approx(1.0)
    assert not s.within_paper_gate()


def test_runstats_single_sample():
    s = RunStats((5.0,))
    assert s.stddev == 0.0
    assert s.ci99_halfwidth == 0.0
    assert s.within_paper_gate()


def test_runstats_empty_rejected():
    with pytest.raises(ValueError):
        RunStats(())


def test_deterministic_measurement_stops_at_floor():
    calls = itertools.count()

    def measure():
        next(calls)
        return 7.0

    stats = paper_methodology_mean(measure, min_runs=20)
    assert stats.n == 20
    assert stats.mean == 7.0


def test_noisy_measurement_keeps_sampling_until_gate():
    values = iter([10.0, 20.0] + [15.0] * 500)
    stats = paper_methodology_mean(lambda: next(values), min_runs=2, escalation_runs=100)
    assert stats.n > 2
    assert stats.within_paper_gate() or stats.ci99_halfwidth <= 0.05 * stats.mean


def test_escalation_to_ci_criterion():
    # Alternating values never meet the stddev gate but the CI tightens.
    values = itertools.cycle([10.0, 14.0])
    stats = paper_methodology_mean(
        lambda: next(values), min_runs=20, escalation_runs=40, max_runs=5000
    )
    assert stats.n >= 40
    assert stats.ci99_halfwidth <= 0.05 * stats.mean


def test_max_runs_cap():
    values = itertools.cycle([0.0, 100.0])  # hopeless variance
    stats = paper_methodology_mean(
        lambda: next(values), min_runs=4, escalation_runs=8, max_runs=16
    )
    assert stats.n == 16


def test_bad_run_bounds():
    with pytest.raises(ValueError):
        paper_methodology_mean(lambda: 1.0, min_runs=0)
    with pytest.raises(ValueError):
        paper_methodology_mean(lambda: 1.0, min_runs=10, escalation_runs=5)


def test_series_stats():
    s = SeriesStats("BoringSSL")
    s.add(1024, RunStats((2.0,)))
    s.add(16, RunStats((1.0,)))
    assert s.xs() == [16, 1024]
    assert s.means() == [1.0, 2.0]
    assert s.mean_at(16) == 1.0
    with pytest.raises(ValueError):
        s.add(16, RunStats((9.0,)))


def test_overhead_percent():
    # The paper's Ethernet headline: 99.81s vs 88.52s -> 12.75%.
    assert overhead_percent(99.81, 88.52) == pytest.approx(12.75, abs=0.01)
    with pytest.raises(ValueError):
        overhead_percent(1.0, 0.0)


def test_total_time_overhead_is_not_mean_of_ratios():
    enc = [2.0, 30.0]
    base = [1.0, 29.0]
    # mean-of-ratios would say (100% + 3.4%)/2 ≈ 51.7%; totals say 6.7%.
    assert total_time_overhead_percent(enc, base) == pytest.approx(6.666, abs=0.01)
    with pytest.raises(ValueError):
        total_time_overhead_percent([1.0], [1.0, 2.0])
    with pytest.raises(ValueError):
        total_time_overhead_percent([], [])
