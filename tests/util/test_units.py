"""Unit tests for size/rate parsing and formatting."""

import pytest

from repro.util.units import (
    KiB,
    MiB,
    format_bytes,
    format_rate,
    format_time,
    mb_per_s,
    parse_size,
)


@pytest.mark.parametrize(
    "text,expected",
    [
        ("1B", 1),
        ("16B", 16),
        ("256b", 256),
        ("1KB", KiB),
        ("16KB", 16 * KiB),
        ("2MB", 2 * MiB),
        ("4mb", 4 * MiB),
        ("1GiB", 1024 * MiB),
        ("0", 0),
        (4096, 4096),
    ],
)
def test_parse_size(text, expected):
    assert parse_size(text) == expected


@pytest.mark.parametrize("bad", ["", "abc", "-4KB", "1.5B"])
def test_parse_size_rejects(bad):
    with pytest.raises(ValueError):
        parse_size(bad)


def test_parse_size_rejects_negative_int():
    with pytest.raises(ValueError):
        parse_size(-1)


@pytest.mark.parametrize(
    "n,expected",
    [(1, "1B"), (16, "16B"), (KiB, "1KB"), (16 * KiB, "16KB"), (2 * MiB, "2MB")],
)
def test_format_bytes(n, expected):
    assert format_bytes(n) == expected


def test_format_bytes_roundtrips_parse():
    for n in (1, 16, 256, KiB, 4 * KiB, 16 * KiB, MiB, 2 * MiB):
        assert parse_size(format_bytes(n)) == n


def test_format_rate():
    assert format_rate(1381e6) == "1381.00 MB/s"


def test_format_time_scales():
    assert format_time(31.5e-6) == "31.50us"
    assert format_time(0.0125) == "12.500ms"
    assert format_time(88.52) == "88.520s"
    with pytest.raises(ValueError):
        format_time(-1)


def test_mb_per_s():
    assert mb_per_s(2 * MiB, 2 * MiB / 1038e6) == pytest.approx(1038.0)
    with pytest.raises(ValueError):
        mb_per_s(1, 0)
