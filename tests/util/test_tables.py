"""Rendering tests for the ASCII table/figure output."""

import pytest

from repro.util.tables import Figure, Table, comparison_table


def test_table_renders_aligned():
    t = Table("demo", ["1B", "2MB"])
    t.add_row("Unencrypted", [0.05, 1038.0])
    t.add_row("BoringSSL", [0.045, 592.25])
    out = t.render()
    lines = out.splitlines()
    assert lines[0] == "demo"
    assert "Unencrypted" in out
    assert "1,038.00" in out
    assert "0.045" in out
    # all body lines equally wide
    widths = {len(line) for line in lines[1:]}
    assert len(widths) == 1


def test_table_rejects_wrong_cell_count():
    t = Table("demo", ["a", "b"])
    with pytest.raises(ValueError):
        t.add_row("x", [1.0])


def test_table_notes():
    t = Table("demo", ["a"])
    t.add_row("x", [1])
    t.add_note("calibrated")
    assert "note: calibrated" in t.render()


def test_figure_renders_series_and_sparklines():
    f = Figure("tput", "size", "MB/s", log_y=True)
    f.add_series("base", [(1024, 17.0), (2097152, 1038.0)])
    f.add_series("enc", [(1024, 16.1), (2097152, 592.0)])
    out = f.render()
    assert "tput" in out
    assert "1KB" in out and "2MB" in out
    assert "|" in out  # sparkline present
    assert "base" in out and "enc" in out


def test_figure_empty_series_rejected():
    f = Figure("x", "a", "b")
    with pytest.raises(ValueError):
        f.add_series("empty", [])


def test_figure_pair_count_axis():
    f = Figure("pairs", "pairs", "MB/s")
    f.add_series("base", [(1, 1.0), (2, 2.0), (8, 8.0)])
    out = f.render()
    assert "| 1 |" in out or " 1 " in out


def test_comparison_table_interleaves_paper_rows():
    t = comparison_table(
        "cmp", ["x"], {"A": [1.0]}, paper={"A": [2.0]}
    )
    out = t.render()
    assert "(paper) A" in out
