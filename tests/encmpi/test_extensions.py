"""Tests for the future-work extensions: key exchange, replay
protection, pipelined encryption."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.encmpi import EncryptedComm, SecurityConfig
from repro.encmpi.keyexchange import establish_session_key
from repro.encmpi.pipeline import PipelinedCrypto, plan_pipeline
from repro.encmpi.replay import ReplayError, ReplayGuard, counter_of_nonce
from repro.models.cpu import ClusterSpec, TWO_NODE_CLUSTER
from repro.models.cryptolib import get_profile
from repro.simmpi import run_program
from repro.util.units import MiB


# ---- key exchange -----------------------------------------------------------


def test_all_ranks_derive_same_key():
    def prog(ctx):
        return establish_session_key(ctx, key_bits=256, epoch=7)

    results = run_program(4, prog, cluster=ClusterSpec(2, 4)).results
    assert len(set(results)) == 1
    assert len(results[0]) == 32


def test_key_exchange_single_rank():
    def prog(ctx):
        return establish_session_key(ctx)

    res = run_program(1, prog, cluster=ClusterSpec(1, 1)).results
    assert len(res[0]) == 32


def test_epochs_give_different_keys():
    def prog(ctx):
        k0 = establish_session_key(ctx, epoch=0)
        k1 = establish_session_key(ctx, epoch=1)
        return (k0, k1)

    results = run_program(2, prog, cluster=TWO_NODE_CLUSTER).results
    assert results[0] == results[1]
    assert results[0][0] != results[0][1]


def test_exchanged_key_drives_encrypted_comm():
    payload = b"post-handshake secret"

    def prog(ctx):
        key = establish_session_key(ctx)
        enc = EncryptedComm(ctx, SecurityConfig().with_key(key))
        if ctx.rank == 0:
            enc.send(payload, 1)
        else:
            data, _status = enc.recv(0)
            return data

    assert run_program(2, prog, cluster=TWO_NODE_CLUSTER).results[1] == payload


def test_key_exchange_costs_time():
    def prog(ctx):
        t0 = ctx.now
        establish_session_key(ctx)
        return ctx.now - t0

    results = run_program(4, prog, cluster=ClusterSpec(2, 4)).results
    # At least two modexps per rank at ~1.5 ms each.
    assert all(t >= 2e-3 for t in results)


def test_bad_key_bits():
    def prog(ctx):
        return establish_session_key(ctx, key_bits=64)

    from repro.des.process import ProcessFailed

    with pytest.raises(ProcessFailed):
        run_program(1, prog, cluster=ClusterSpec(1, 1))


# ---- replay protection ---------------------------------------------------------


def test_replay_guard_accepts_in_order():
    g = ReplayGuard()
    for i in range(10):
        g.check(i)
    assert g.highest == 9


def test_replay_guard_rejects_duplicates():
    g = ReplayGuard()
    g.check(5)
    with pytest.raises(ReplayError, match="replayed"):
        g.check(5)


def test_replay_guard_accepts_window_reordering():
    g = ReplayGuard(window=8)
    g.check(10)
    g.check(7)  # late but within window
    g.check(9)
    with pytest.raises(ReplayError):
        g.check(7)  # second time


def test_replay_guard_rejects_ancient():
    g = ReplayGuard(window=8)
    g.check(100)
    with pytest.raises(ReplayError, match="older than the window"):
        g.check(91)
    g.check(93)  # 100-93=7 < 8: ok


def test_replay_guard_validation():
    with pytest.raises(ValueError):
        ReplayGuard(window=0)
    g = ReplayGuard()
    with pytest.raises(ReplayError):
        g.check(-1)


@settings(max_examples=100)
@given(st.lists(st.integers(0, 200), min_size=1, max_size=60))
def test_replay_guard_never_accepts_a_counter_twice(counters):
    g = ReplayGuard(window=32)
    accepted = []
    for c in counters:
        try:
            g.check(c)
        except ReplayError:
            continue
        accepted.append(c)
    assert len(accepted) == len(set(accepted))


def test_counter_of_nonce():
    from repro.crypto.nonces import CounterNonces

    src = CounterNonces(sender_id=3)
    assert counter_of_nonce(src.next()) == 0
    assert counter_of_nonce(src.next()) == 1
    with pytest.raises(ValueError):
        counter_of_nonce(b"short")


def test_replay_guard_end_to_end_with_counter_nonces():
    """Counter nonces + guard: a replayed wire message is rejected."""

    def prog(ctx):
        cfg = SecurityConfig(nonce_strategy="counter")
        enc = EncryptedComm(ctx, cfg)
        if ctx.rank == 0:
            enc.send(b"m0", 1)
            enc.send(b"m1", 1)
        else:
            guard = ReplayGuard()
            wires = [ctx.comm.irecv(0).wait() for _ in range(2)]
            for w in wires:
                guard.check(counter_of_nonce(w[:12]))
                enc._decrypt_charged(w)
            # adversary replays the first message
            try:
                guard.check(counter_of_nonce(wires[0][:12]))
            except ReplayError:
                return "replay-blocked"
            return "replay-accepted"

    results = run_program(2, prog, cluster=TWO_NODE_CLUSTER).results
    assert results[1] == "replay-blocked"


def test_replay_guard_exact_window_boundary():
    """offset == window-1 is the last acceptable lag; offset == window
    is the first rejected one."""
    g = ReplayGuard(window=8)
    g.check(20)
    g.check(13)  # offset 7 == window-1: accepted
    with pytest.raises(ReplayError, match="older than the window"):
        g.check(12)  # offset 8 == window: rejected
    with pytest.raises(ReplayError, match="replayed"):
        g.check(13)


def test_replay_guard_window_slides_over_seen_bits():
    """Advancing highest must shift old accept-bits out, not wrap them
    onto new counters."""
    g = ReplayGuard(window=4)
    g.check(0)
    g.check(4)  # shifts counter 0's bit exactly off the edge
    with pytest.raises(ReplayError, match="older than the window"):
        g.check(0)  # now outside the window, not "free" again
    g.check(1)  # offset 3: still inside, never seen — accepted


def test_replay_window_config_requires_counter_nonces():
    with pytest.raises(ValueError, match="counter"):
        SecurityConfig(replay_window=16)  # default nonce_strategy=random
    with pytest.raises(ValueError, match="replay_window"):
        SecurityConfig(nonce_strategy="counter", replay_window=-1)
    cfg = SecurityConfig(nonce_strategy="counter", replay_window=16)
    assert cfg.with_key(bytes(32)).replay_window == 16


def test_encrypted_comm_accepts_reordered_delivery_within_window():
    """Tag-based retrieval order != send order: counters arrive 1 then
    0, which a window >= 2 must accept and window == 1 must reject."""

    def make_prog(window):
        def prog(ctx):
            cfg = SecurityConfig(nonce_strategy="counter", replay_window=window)
            enc = EncryptedComm(ctx, cfg)
            if ctx.rank == 0:
                enc.send(b"first", 1, tag=0)   # counter 0
                enc.send(b"second", 1, tag=1)  # counter 1
                return None
            out = [enc.recv(0, tag=1)[0]]  # counter 1 arrives first
            try:
                out.append(enc.recv(0, tag=0)[0])  # counter 0, lag 1
            except ReplayError:
                out.append("dropped")
            return out

        return prog

    wide = run_program(2, make_prog(8), cluster=TWO_NODE_CLUSTER).results
    assert wide[1] == [b"second", b"first"]
    narrow = run_program(2, make_prog(1), cluster=TWO_NODE_CLUSTER).results
    assert narrow[1] == [b"second", "dropped"]


def test_encrypted_comm_replay_guards_are_per_source():
    """Two senders reuse the same counter values; per-source windows
    must not cross-reject."""

    def prog(ctx):
        cfg = SecurityConfig(nonce_strategy="counter", replay_window=8)
        enc = EncryptedComm(ctx, cfg)
        if ctx.rank in (0, 1):
            enc.send(bytes([ctx.rank]) * 8, 2, tag=ctx.rank)
            return None
        a = enc.recv(0, tag=0)[0]  # counter 0 from source 0
        b = enc.recv(1, tag=1)[0]  # counter 0 from source 1
        return (a, b)

    res = run_program(3, prog, cluster=TWO_NODE_CLUSTER).results
    assert res[2] == (b"\x00" * 8, b"\x01" * 8)


# ---- pipelined encryption ----------------------------------------------------------


def test_plan_serial_when_single_core_or_small():
    p = get_profile("boringssl")
    plan = plan_pipeline(p, 1 * MiB, cores=1)
    assert plan.parallel_time == plan.serial_time
    small = plan_pipeline(p, 1024, cores=8)
    assert small.waves == 1


def test_plan_speedup_scales_with_cores():
    p = get_profile("boringssl")
    t1 = plan_pipeline(p, 8 * MiB, cores=1).parallel_time
    t4 = plan_pipeline(p, 8 * MiB, cores=4).parallel_time
    t8 = plan_pipeline(p, 8 * MiB, cores=8).parallel_time
    assert t8 < t4 < t1
    assert plan_pipeline(p, 8 * MiB, cores=8).speedup > 4


def test_plan_validation():
    p = get_profile("boringssl")
    with pytest.raises(ValueError):
        plan_pipeline(p, -1, 2)
    with pytest.raises(ValueError):
        plan_pipeline(p, 100, 0)
    with pytest.raises(ValueError):
        plan_pipeline(p, 100, 2, chunk_bytes=0)


@pytest.mark.parametrize("mode", ["real", "modeled"])
def test_pipelined_send_recv_roundtrip(mode):
    payload = bytes(range(256)) * 1024  # 256 KiB

    def prog(ctx):
        enc = EncryptedComm(ctx, SecurityConfig(crypto_mode=mode))
        pipe = PipelinedCrypto(enc, chunk_bytes=64 * 1024)
        if ctx.rank == 0:
            plan = pipe.send(payload, 1)
            return plan.cores
        data, _plan = pipe.recv(0)
        return data

    results = run_program(2, prog, cluster=TWO_NODE_CLUSTER).results
    assert results[1] == payload
    assert results[0] >= 1


def test_pipelined_faster_than_serial_on_idle_node():
    """With 7 idle cores, the pipelined 2 MB ping-pong beats serial."""
    size = 2 * MiB
    times = {}

    def serial(ctx):
        enc = EncryptedComm(ctx, SecurityConfig(crypto_mode="modeled"))
        if ctx.rank == 0:
            t0 = ctx.now
            enc.send(b"z" * size, 1)
            times["serial"] = ctx.now - t0
        else:
            enc.recv(0)

    def pipelined(ctx):
        enc = EncryptedComm(ctx, SecurityConfig(crypto_mode="modeled"))
        pipe = PipelinedCrypto(enc)
        if ctx.rank == 0:
            t0 = ctx.now
            pipe.send(b"z" * size, 1)
            times["pipelined"] = ctx.now - t0
        else:
            pipe.recv(0)

    run_program(2, serial, cluster=TWO_NODE_CLUSTER)
    run_program(2, pipelined, cluster=TWO_NODE_CLUSTER)
    assert times["pipelined"] < times["serial"]
