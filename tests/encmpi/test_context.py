"""Encrypted MPI layer tests: framing, overheads, semantics, tampering."""

import pytest

from repro.des.process import ProcessFailed
from repro.encmpi import EncryptedComm, SecurityConfig
from repro.models.cpu import ClusterSpec, TWO_NODE_CLUSTER
from repro.simmpi import run_program
from repro.util.units import KiB, MiB

CLUSTER4 = ClusterSpec(nodes=4, cores_per_node=4)


def _run(nranks, prog, cluster=TWO_NODE_CLUSTER, network="ethernet"):
    return run_program(nranks, prog, cluster=cluster, network=network).results


# ---- config -----------------------------------------------------------------


def test_default_config_matches_paper_setup():
    cfg = SecurityConfig()
    assert cfg.library == "boringssl"
    assert cfg.key_bits == 256
    assert cfg.nonce_strategy == "random"
    assert len(cfg.key) == 32


def test_config_validation():
    with pytest.raises(ValueError):
        SecurityConfig(library="des3")
    with pytest.raises(ValueError):
        SecurityConfig(key_bits=512)
    with pytest.raises(ValueError):
        SecurityConfig(library="libsodium", key_bits=128)
    with pytest.raises(ValueError):
        SecurityConfig(nonce_strategy="hope")
    with pytest.raises(ValueError):
        SecurityConfig(crypto_mode="imaginary")
    with pytest.raises(ValueError):
        SecurityConfig(key=b"short")


def test_config_with_key():
    cfg = SecurityConfig().with_key(bytes(16))
    assert cfg.key_bits == 128
    assert cfg.key == bytes(16)


# ---- point-to-point ------------------------------------------------------------


@pytest.mark.parametrize("mode", ["real", "modeled"])
def test_send_recv_roundtrip(mode):
    payload = b"secret hpc data" * 10

    def prog(ctx):
        enc = EncryptedComm(ctx, SecurityConfig(crypto_mode=mode))
        if ctx.rank == 0:
            enc.send(payload, 1, tag=4)
        else:
            data, status = enc.recv(0, 4)
            return data

    assert _run(2, prog)[1] == payload


def test_wire_carries_28_extra_bytes():
    """Algorithm 1: an ℓ-byte message crosses the fabric as ℓ+28 bytes."""
    captured = {}

    def prog(ctx):
        enc = EncryptedComm(ctx)
        if ctx.rank == 0:
            enc.send(b"x" * 100, 1)
        else:
            inner = ctx.comm.irecv(0)
            wire = inner.wait()
            captured["wire_len"] = len(wire)
            captured["env_wire_bytes"] = inner._match_env.wire_bytes

    _run(2, prog)
    assert captured["wire_len"] == 128
    assert captured["env_wire_bytes"] == 128


def test_ciphertext_differs_from_plaintext_on_the_wire():
    def prog(ctx):
        enc = EncryptedComm(ctx)
        if ctx.rank == 0:
            enc.send(b"A" * 64, 1)
        else:
            wire = ctx.comm.irecv(0).wait()
            return wire

    wire = _run(2, prog)[1]
    assert b"A" * 64 not in wire


def test_modeled_mode_ships_placeholder_frame():
    def prog(ctx):
        enc = EncryptedComm(ctx, SecurityConfig(crypto_mode="modeled"))
        if ctx.rank == 0:
            enc.send(b"B" * 64, 1)
        else:
            return ctx.comm.irecv(0).wait()

    wire = _run(2, prog)[1]
    assert len(wire) == 64 + 28
    assert wire[12:-16] == b"B" * 64


def test_tampering_detected_end_to_end():
    """Flip one wire bit in flight: the receiver must reject."""

    def prog(ctx):
        enc = EncryptedComm(ctx)
        if ctx.rank == 0:
            enc.send(b"launch code 0000", 1)
        else:
            wire = bytearray(ctx.comm.irecv(0).wait())
            wire[20] ^= 0x01  # adversary-in-the-middle
            enc._decrypt_charged(bytes(wire))

    with pytest.raises(ProcessFailed, match="AuthenticationError|tamper"):
        _run(2, prog)


def test_isend_irecv_decrypt_in_wait():
    payload = b"nonblocking payload"

    def prog(ctx):
        enc = EncryptedComm(ctx)
        if ctx.rank == 0:
            req = enc.isend(payload, 1, tag=2)
            req.wait()
        else:
            req = enc.irecv(0, 2)
            return req.wait()

    assert _run(2, prog)[1] == payload


def test_waitall_and_sendrecv():
    def prog(ctx):
        enc = EncryptedComm(ctx)
        other = 1 - ctx.rank
        data, _status = enc.sendrecv(f"hi from {ctx.rank}".encode(), other, other)
        reqs = [enc.isend(bytes([i]), other, tag=10 + i) for i in range(3)]
        enc.waitall(reqs)
        got = [enc.recv(other, 10 + i)[0] for i in range(3)]
        return (data, got)

    results = _run(2, prog)
    assert results[0][0] == b"hi from 1"
    assert results[1][0] == b"hi from 0"
    assert results[0][1] == [bytes([i]) for i in range(3)]


def test_encryption_charges_time():
    """An encrypted ping-pong must be slower than the baseline, and the
    slowdown must follow the library ranking."""
    size = 2 * MiB
    times = {}

    def make(libname):
        def prog(ctx):
            cfg = SecurityConfig(library=libname, crypto_mode="modeled")
            enc = EncryptedComm(ctx, cfg)
            if ctx.rank == 0:
                t0 = ctx.now
                enc.send(b"z" * size, 1)
                enc.recv(1)
                times[libname] = ctx.now - t0
            else:
                data, _status = enc.recv(0)
                enc.send(data, 0)

        return prog

    def baseline(ctx):
        if ctx.rank == 0:
            t0 = ctx.now
            ctx.comm.send(b"z" * size, 1)
            ctx.comm.recv(1)
            times["baseline"] = ctx.now - t0
        else:
            data, _status = ctx.comm.recv(0)
            ctx.comm.send(data, 0)

    _run(2, baseline)
    for lib in ("boringssl", "libsodium", "cryptopp"):
        _run(2, make(lib))
    assert times["baseline"] < times["boringssl"]
    assert times["boringssl"] < times["libsodium"]
    assert times["libsodium"] < times["cryptopp"]


def test_counters_track_traffic():
    counters = {}

    def prog(ctx):
        enc = EncryptedComm(ctx)
        if ctx.rank == 0:
            enc.send(b"x" * 100, 1)
            enc.send(b"y" * 50, 1)
            counters["sent"] = (enc.messages_sent, enc.bytes_encrypted)
        else:
            enc.recv(0)
            enc.recv(0)
            counters["recv"] = (enc.messages_received, enc.bytes_decrypted)

    _run(2, prog)
    assert counters["sent"] == (2, 150)
    assert counters["recv"] == (2, 150)


def test_bind_header_rejects_retagged_message():
    """With header binding, moving a ciphertext to a different tag
    breaks authentication (an extension beyond the paper)."""

    def prog(ctx):
        cfg = SecurityConfig(bind_header=True)
        enc = EncryptedComm(ctx, cfg)
        if ctx.rank == 0:
            enc.send(b"bound", 1, tag=1)
        else:
            wire = ctx.comm.irecv(0, 1).wait()
            # Receiver tries to open it as if it were tag 2.
            enc._decrypt_charged(wire, enc._aad_for_peer(0, 2))

    with pytest.raises(ProcessFailed):
        _run(2, prog)


# ---- encrypted collectives --------------------------------------------------------


@pytest.mark.parametrize("mode", ["real", "modeled"])
@pytest.mark.parametrize("size", [0, 1, 300, 20 * KiB])
def test_encrypted_bcast(mode, size):
    payload = bytes(i % 256 for i in range(size))

    def prog(ctx):
        enc = EncryptedComm(ctx, SecurityConfig(crypto_mode=mode))
        data = payload if ctx.rank == 0 else None
        return enc.bcast(data, 0, nbytes=size)

    results = _run(8, prog, cluster=CLUSTER4)
    assert all(r == payload for r in results)


@pytest.mark.parametrize("mode", ["real", "modeled"])
def test_encrypted_allgather(mode):
    def prog(ctx):
        enc = EncryptedComm(ctx, SecurityConfig(crypto_mode=mode))
        return enc.allgather(f"blk{ctx.rank}".encode())

    results = _run(4, prog, cluster=CLUSTER4)
    expected = [f"blk{i}".encode() for i in range(4)]
    assert all(r == expected for r in results)


@pytest.mark.parametrize("mode", ["real", "modeled"])
def test_encrypted_alltoall(mode):
    def prog(ctx):
        enc = EncryptedComm(ctx, SecurityConfig(crypto_mode=mode))
        chunks = [f"{ctx.rank}->{d}".encode() for d in range(ctx.size)]
        return enc.alltoall(chunks)

    results = _run(4, prog, cluster=CLUSTER4)
    for r in range(4):
        assert results[r] == [f"{s}->{r}".encode() for s in range(4)]


def test_encrypted_alltoallv():
    def prog(ctx):
        enc = EncryptedComm(ctx)
        chunks = [bytes([ctx.rank]) * (d + 1) for d in range(ctx.size)]
        return enc.alltoallv(chunks)

    results = _run(4, prog, cluster=CLUSTER4)
    for r in range(4):
        assert results[r] == [bytes([s]) * (r + 1) for s in range(4)]


def test_encrypted_bcast_nonroot_requires_nbytes():
    def prog(ctx):
        enc = EncryptedComm(ctx)
        data = b"abc" if ctx.rank == 0 else None
        return enc.bcast(data, 0)

    with pytest.raises(ProcessFailed):
        _run(2, prog)
