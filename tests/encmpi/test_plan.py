"""The CryptoPlan facade: validation, the CLI string form, the
process-wide default, and the SecurityConfig migration shims.

The redesign's contract mirrors the RunOptions one: the frozen typed
plan is equivalent to the loose ``crypto_mode=`` spelling it replaces,
the deprecated spelling warns exactly once per process, and conflicting
combinations are errors, not silent precedence.
"""

import warnings

import pytest

from repro.encmpi import CryptoPlan, SecurityConfig, parse_crypto_plan
from repro.encmpi import plan as plan_mod


@pytest.fixture(autouse=True)
def _fresh_plan_state():
    """Each test sees the one-shot warnings anew and no default plan."""
    plan_mod._warned.clear()
    prev = plan_mod.set_default_crypto_plan(None)
    yield
    plan_mod._warned.clear()
    plan_mod.set_default_crypto_plan(prev)


def test_default_plan_is_the_papers_serial_discipline():
    plan = CryptoPlan()
    assert plan.mode == "serial"
    assert not plan.pipelined
    assert plan.bytework == "real"
    assert CryptoPlan(mode="cryptmpi").pipelined


@pytest.mark.parametrize(
    "kwargs, match",
    [
        (dict(mode="threaded"), "mode"),
        (dict(chunk_bytes=0), "chunk_bytes"),
        (dict(helper_cores=-1), "helper_cores"),
        (dict(bytework="emulated"), "bytework"),
        (dict(library="nss"), "library"),
    ],
)
def test_plan_validation(kwargs, match):
    with pytest.raises(ValueError, match=match):
        CryptoPlan(**kwargs)


def test_plan_is_frozen():
    with pytest.raises(AttributeError):
        CryptoPlan().mode = "cryptmpi"


def test_parse_crypto_plan_string_form():
    plan = parse_crypto_plan("cryptmpi:chunk=256k,cores=3")
    assert plan == CryptoPlan(mode="cryptmpi", chunk_bytes=256 * 1024,
                              helper_cores=3)
    assert parse_crypto_plan("serial") == CryptoPlan()
    assert parse_crypto_plan("cryptmpi:cores=auto").helper_cores is None
    got = parse_crypto_plan("cryptmpi:library=openssl,bytework=modeled")
    assert (got.library, got.bytework) == ("openssl", "modeled")


def test_parse_round_trips_the_canonical_token():
    for plan in (
        CryptoPlan(),
        CryptoPlan(mode="cryptmpi", chunk_bytes=64 * 1024, helper_cores=2,
                   library="libsodium", bytework="modeled"),
    ):
        assert parse_crypto_plan(plan.token()) == plan


@pytest.mark.parametrize(
    "spec, match",
    [
        ("turbo", "unknown crypto plan mode"),
        ("cryptmpi:chunk", "key=value"),
        ("serial:threads=4", "unknown crypto option"),
    ],
)
def test_parse_errors_name_the_valid_forms(spec, match):
    with pytest.raises(ValueError, match=match):
        parse_crypto_plan(spec)


def test_default_plan_overlays_geometry_only():
    plan_mod.set_default_crypto_plan(
        parse_crypto_plan("cryptmpi:chunk=128k,cores=2,library=openssl")
    )
    cfg = SecurityConfig(library="cryptopp", crypto=None)
    # geometry follows the default; library/bytework stay the config's
    assert cfg.crypto.mode == "cryptmpi"
    assert cfg.crypto.chunk_bytes == 128 * 1024
    assert cfg.crypto.helper_cores == 2
    assert cfg.crypto.library == "cryptopp"
    assert cfg.crypto.bytework == "real"
    # an explicit plan bypasses the process-wide default entirely
    pinned = SecurityConfig(crypto=CryptoPlan())
    assert pinned.crypto == CryptoPlan()


def test_set_default_plan_returns_previous_and_typechecks():
    first = parse_crypto_plan("cryptmpi")
    assert plan_mod.set_default_crypto_plan(first) is None
    assert plan_mod.set_default_crypto_plan(None) == first
    with pytest.raises(TypeError, match="CryptoPlan"):
        plan_mod.set_default_crypto_plan("cryptmpi")


def test_deprecated_crypto_mode_equals_new_spelling():
    with pytest.warns(DeprecationWarning, match="crypto_mode"):
        old = SecurityConfig(library="openssl", crypto_mode="modeled")
    new = SecurityConfig(
        crypto=CryptoPlan(library="openssl", bytework="modeled")
    )
    assert old == new
    assert old.crypto_mode == "modeled"  # the read-only mirror survives


def test_deprecated_crypto_mode_warns_exactly_once():
    with pytest.warns(DeprecationWarning):
        SecurityConfig(crypto_mode="real")
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        SecurityConfig(crypto_mode="real")  # ledger already holds it


def test_conflicting_bytework_spellings_are_an_error():
    with pytest.raises(ValueError, match="conflicting byte-work"):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            SecurityConfig(crypto_mode="real",
                           crypto=CryptoPlan(bytework="modeled"))


def test_conflicting_libraries_are_an_error():
    with pytest.raises(ValueError, match="conflicting libraries"):
        SecurityConfig(library="openssl",
                       crypto=CryptoPlan(library="libsodium"))


def test_library_reconciliation_fills_the_defaulted_side():
    via_config = SecurityConfig(library="openssl", crypto=CryptoPlan())
    assert via_config.crypto.library == "openssl"
    assert via_config.library == "openssl"
    via_plan = SecurityConfig(crypto=CryptoPlan(library="openssl"))
    assert via_plan.library == "openssl"
    assert via_config == via_plan
