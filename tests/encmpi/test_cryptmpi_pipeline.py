"""CryptMPI-style pipelined encryption: the chunked wire protocol, the
helper-core schedule, its determinism, and the degraded paths.

The invariants pinned here:

- a ``CryptoPlan(mode="cryptmpi")`` transfer is transparent to the
  caller (same plaintext, same Status convention as serial);
- windowed multi-chunk messages on one (source, tag) channel never
  cross-match (the seq/sibling-tag protocol);
- seal/open work runs on the node's helper cores and its ``core_busy``
  trace is byte-deterministic across runs;
- with zero helpers (oversubscribed node) the pipeline degrades to
  serial-chunked and schedules nothing on the allocator;
- serial-mode plans leave the committed golden digests untouched even
  when a process-wide cryptmpi default is armed.
"""

import pytest

from repro import api
from repro.encmpi import CryptoPlan, EncryptedComm, SecurityConfig
from repro.encmpi import plan as plan_mod
from repro.models.cpu import ClusterSpec
from repro.simmpi import run_program
from repro.simmpi.faults import FaultPlan
from repro.simmpi.resilience import ResiliencePolicy

TWO_NODES = ClusterSpec(nodes=2, cores_per_node=4)
OVERSUBSCRIBED = ClusterSpec(nodes=1, cores_per_node=2)

TAG_BULK = 11
CHUNK = 4 * 1024

REAL_PLAN = CryptoPlan(mode="cryptmpi", chunk_bytes=CHUNK, bytework="real")


@pytest.fixture(autouse=True)
def _no_default_plan():
    prev = plan_mod.set_default_crypto_plan(None)
    yield
    plan_mod.set_default_crypto_plan(prev)


def _payload(n: int) -> bytes:
    return bytes(i % 251 for i in range(n))


def _roundtrip(plan, cluster, size, **run_kwargs):
    payload = _payload(size)

    def program(ctx):
        enc = EncryptedComm(ctx, SecurityConfig(crypto=plan))
        if ctx.rank == 0:
            enc.send(payload, 1, tag=TAG_BULK)
            return None
        data, status = enc.recv(0, TAG_BULK)
        return (data, status)

    return payload, run_program(2, program, cluster=cluster, **run_kwargs)


def test_multichunk_roundtrip_is_transparent():
    size = 3 * CHUNK + 123  # 4 chunks, last one short
    payload, result = _roundtrip(REAL_PLAN, TWO_NODES, size)
    data, status = result.results[1]
    assert data == payload
    assert (status.source, status.tag) == (0, TAG_BULK)
    # Status.count mirrors the serial convention: delivered frame bytes
    # (here: 4 frames of header+nonce+ct+tag), never less than the
    # plaintext.
    assert status.count >= size


def test_windowed_interleave_never_cross_matches():
    """Six multi-chunk isends in flight on one channel: the seq-based
    sibling tags must keep every message's chunks together."""
    n_msgs, size = 6, 2 * CHUNK + 77
    payloads = [bytes([i + 1]) * size for i in range(n_msgs)]

    def program(ctx):
        enc = EncryptedComm(ctx, SecurityConfig(crypto=REAL_PLAN))
        if ctx.rank == 0:
            enc.waitall([enc.isend(p, 1, tag=TAG_BULK) for p in payloads])
            return None
        reqs = [enc.irecv(0, TAG_BULK) for _ in range(n_msgs)]
        return [bytes(r.wait()) for r in reqs]

    result = run_program(2, program, cluster=TWO_NODES)
    assert result.results[1] == payloads


def test_core_busy_trace_and_determinism():
    def run():
        payload = _payload(8 * CHUNK)

        def program(ctx):
            enc = EncryptedComm(ctx, SecurityConfig(crypto=REAL_PLAN))
            if ctx.rank == 0:
                enc.send(payload, 1, tag=TAG_BULK)
            else:
                enc.recv(0, TAG_BULK)

        return api.run_job(program, nranks=2, cluster=TWO_NODES,
                           trace="events").trace

    first, second = run(), run()
    busy = list(first.events_in("cpu", "core_busy"))
    assert busy, "helper-core seals/opens must land on the cpu layer"
    assert {e.data["work"] for e in busy} == {"seal", "open"}
    # same seed, same schedule: the full event stream is byte-identical
    assert first.digest() == second.digest()
    # chunk ledger balances: every sealed chunk is opened exactly once
    sealer = first.counters_snapshot()[0]
    opener = first.counters_snapshot()[1]
    assert sealer["chunk_seals"] == opener["chunk_opens"] == 8


def test_oversubscribed_node_degrades_to_serial_chunked():
    """Both ranks resident on a 2-core node: zero helpers, so nothing
    may be scheduled on the allocator — yet the transfer still works."""
    size = 5 * CHUNK
    payload, result = _roundtrip(REAL_PLAN, OVERSUBSCRIBED, size,
                                 trace="events")
    data, _status = result.results[1]
    assert data == payload
    assert not list(result.trace.events_in("cpu"))


def test_helper_cores_zero_forces_the_fallback():
    plan = CryptoPlan(mode="cryptmpi", chunk_bytes=CHUNK, helper_cores=0,
                      bytework="real")
    payload, result = _roundtrip(plan, TWO_NODES, 3 * CHUNK, trace="events")
    data, _status = result.results[1]
    assert data == payload
    assert not list(result.trace.events_in("cpu"))


def test_pipelined_beats_serial_on_large_messages():
    def one_way(plan):
        def program(ctx):
            enc = EncryptedComm(
                ctx, SecurityConfig(crypto=plan)
            )
            if ctx.rank == 0:
                enc.send(b"\x5a" * (1024 * 1024), 1, tag=TAG_BULK)
                return ctx.now
            enc.recv(0, TAG_BULK)
            return ctx.now

        return run_program(
            2, program, network="infiniband",
            cluster=ClusterSpec(nodes=2, cores_per_node=8),
        ).results[1]

    serial = one_way(CryptoPlan(bytework="modeled"))
    piped = one_way(CryptoPlan(mode="cryptmpi", chunk_bytes=64 * 1024,
                               bytework="modeled"))
    assert piped < serial * 0.75


def test_modeled_and_real_bytework_agree_on_timing():
    """The bytework switch changes byte handling, never virtual time."""
    size = 6 * CHUNK + 17

    def one_way(plan):
        _payload_, result = _roundtrip(plan, TWO_NODES, size)
        return result.duration

    real = one_way(REAL_PLAN)
    modeled = one_way(CryptoPlan(mode="cryptmpi", chunk_bytes=CHUNK,
                                 bytework="modeled"))
    assert real == pytest.approx(modeled, abs=0.0)


def test_chunked_delivery_survives_corruption_with_resilience():
    size = 4 * CHUNK
    payload = _payload(size)

    def program(ctx):
        enc = EncryptedComm(ctx, SecurityConfig(crypto=REAL_PLAN))
        if ctx.rank == 0:
            enc.send(payload, 1, tag=TAG_BULK)
            return None
        data, _status = enc.recv(0, TAG_BULK)
        return data

    result = api.run_job(
        program, nranks=2,
        options=api.RunOptions(
            cluster=TWO_NODES,
            faults=FaultPlan(corrupt=0.2, seed=13),
            resilience=ResiliencePolicy(max_retries=8, timeout=1e-3),
        ),
    )
    assert result.results[1] == payload


def test_static_estimator_sees_only_idle_helpers():
    """The PipelinedCrypto wave estimate must use the allocator's idle
    helpers, not the node's raw core count (the oversubscription bug)."""
    from repro.encmpi.pipeline import PipelinedCrypto

    def program(ctx):
        enc = EncryptedComm(
            ctx, SecurityConfig(crypto=CryptoPlan(bytework="modeled"))
        )
        pipe = PipelinedCrypto(enc, chunk_bytes=CHUNK)
        if ctx.rank == 0:
            plan = pipe.charge_encrypt(6 * CHUNK)
            return (plan.cores, plan.waves, plan.nchunks,
                    plan.parallel_time, plan.serial_time)
        return None

    # both ranks resident on the only 2-core node: no helper is idle,
    # so the estimate must collapse to 1 core at the full serial cost
    cores, _waves, _n, parallel, serial = \
        run_program(2, program, cluster=OVERSUBSCRIBED).results[0]
    assert cores == 1
    assert parallel == serial
    # two ranks on separate 4-core nodes: 3 idle helpers + own core
    cores, waves, nchunks, parallel, serial = \
        run_program(2, program, cluster=TWO_NODES).results[0]
    assert (cores, waves, nchunks) == (4, 2, 6)
    assert parallel < serial


def test_goldens_ignore_an_armed_cryptmpi_default():
    """Golden runs pin an explicit serial plan, so even a process-wide
    cryptmpi default (campaign --crypto) must not move their digests."""
    import json
    import os

    from repro.experiments import goldens

    fixture = os.path.join(os.path.dirname(__file__), os.pardir,
                           "goldens", "golden_traces.json")
    with open(fixture) as fh:
        committed = json.load(fh)["runs"]["enc_multipair"]["digest"]
    plan_mod.set_default_crypto_plan(
        CryptoPlan(mode="cryptmpi", chunk_bytes=CHUNK)
    )
    rec = goldens.run_golden("enc_multipair")
    assert rec.digest() == committed
