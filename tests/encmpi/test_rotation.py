"""Key rotation manager tests."""

import pytest

from repro.encmpi import SecurityConfig
from repro.encmpi.rotation import RotatingKeyManager
from repro.models.cpu import ClusterSpec
from repro.simmpi import run_program

CLUSTER = ClusterSpec(nodes=2, cores_per_node=4)


def test_initial_epoch_established_collectively():
    def prog(ctx):
        mgr = RotatingKeyManager(ctx)
        return (mgr.epoch, mgr.key_fingerprint)

    results = run_program(4, prog, cluster=CLUSTER).results
    assert all(e == 0 for e, _fp in results)
    assert len({fp for _e, fp in results}) == 1  # same key everywhere


def test_rotation_triggers_on_traffic_threshold():
    def prog(ctx):
        mgr = RotatingKeyManager(ctx, messages_per_epoch=3)
        fp0 = mgr.key_fingerprint
        other = 1 - ctx.rank
        for i in range(3):
            if ctx.rank == 0:
                mgr.comm.send(bytes([i]), other)
            else:
                mgr.comm.recv(other)
        rotated = mgr.maybe_rotate()
        fp1 = mgr.key_fingerprint
        return (rotated, fp0 != fp1, mgr.epoch)

    results = run_program(2, prog, cluster=CLUSTER).results
    assert all(rotated for rotated, _c, _e in results)
    assert all(changed for _r, changed, _e in results)
    assert all(epoch == 1 for _r, _c, epoch in results)


def test_no_rotation_below_threshold():
    def prog(ctx):
        mgr = RotatingKeyManager(ctx, messages_per_epoch=1000)
        if ctx.rank == 0:
            mgr.comm.send(b"once", 1)
        else:
            mgr.comm.recv(0)
        return mgr.maybe_rotate()

    results = run_program(2, prog, cluster=CLUSTER).results
    assert results == [False, False]


def test_rotation_is_collective_even_if_one_rank_is_over():
    """Only rank 0 crosses the budget; all ranks must still rotate."""

    def prog(ctx):
        mgr = RotatingKeyManager(ctx, messages_per_epoch=2)
        if ctx.rank == 0:
            mgr.comm.send(b"a", 1)
            mgr.comm.send(b"b", 1)  # rank 0: 2 messages -> over
        elif ctx.rank == 1:
            mgr.comm.recv(0)
            mgr.comm.recv(0)
        # ranks 2,3 sent nothing
        rotated = mgr.maybe_rotate()
        return (rotated, mgr.epoch, mgr.key_fingerprint)

    results = run_program(4, prog, cluster=CLUSTER).results
    assert all(r for r, _e, _fp in results)
    assert len({fp for _r, _e, fp in results}) == 1


def test_traffic_flows_across_epochs():
    def prog(ctx):
        mgr = RotatingKeyManager(ctx, messages_per_epoch=1)
        other = 1 - ctx.rank
        received = []
        for round_no in range(3):
            if ctx.rank == 0:
                mgr.comm.send(f"epoch{mgr.epoch}".encode(), other)
            else:
                data, _status = mgr.comm.recv(other)
                received.append(data)
            mgr.maybe_rotate()
        return received

    results = run_program(2, prog, cluster=CLUSTER).results
    assert results[1] == [b"epoch0", b"epoch1", b"epoch2"]


def test_validation():
    def prog(ctx):
        RotatingKeyManager(ctx, messages_per_epoch=0)

    from repro.des.process import ProcessFailed

    with pytest.raises(ProcessFailed):
        run_program(1, prog, cluster=ClusterSpec(1, 1))


def test_config_carried_across_rotations():
    def prog(ctx):
        cfg = SecurityConfig(library="cryptopp", nonce_strategy="counter")
        mgr = RotatingKeyManager(ctx, cfg, messages_per_epoch=1)
        if ctx.rank == 0:
            mgr.comm.send(b"x", 1)
        else:
            mgr.comm.recv(0)
        mgr.maybe_rotate()
        return (mgr.comm.config.library, mgr.comm.config.nonce_strategy)

    results = run_program(2, prog, cluster=CLUSTER).results
    assert all(r == ("cryptopp", "counter") for r in results)