"""The seeded statistics layer: estimators, bootstrap CIs, sound
aggregation, and the StatsSpec parser."""

import random

import pytest

from repro.experiments.stats import (
    Estimate,
    StatsSpec,
    aggregate_rate,
    bootstrap_ci,
    estimate,
    mean,
    median,
    parse_stats_spec,
    rep_networks,
    rep_seeds,
    run_reps,
)
from repro.models.network import FabricSpec, get_network


def test_point_estimators():
    assert mean([1.0, 2.0, 6.0]) == 3.0
    assert median([5.0, 1.0, 3.0]) == 3.0
    assert median([4.0, 1.0, 3.0, 2.0]) == 2.5
    with pytest.raises(ValueError):
        mean([])


def test_bootstrap_ci_is_seed_deterministic():
    rng = random.Random(42)
    samples = [rng.gauss(10.0, 2.0) for _ in range(25)]
    a = bootstrap_ci(samples, confidence=0.95, seed=3)
    b = bootstrap_ci(samples, confidence=0.95, seed=3)
    assert a == b
    assert bootstrap_ci(samples, confidence=0.95, seed=4) != a


def test_bootstrap_ci_brackets_the_statistic():
    rng = random.Random(7)
    samples = [rng.gauss(100.0, 5.0) for _ in range(40)]
    lo, hi = bootstrap_ci(samples, confidence=0.95)
    assert lo < median(samples) < hi
    # the seeded CI of a tight sample is itself tight (well under 3
    # sigma around the true median)
    assert hi - lo < 15.0
    # wider confidence, wider interval
    lo99, hi99 = bootstrap_ci(samples, confidence=0.99)
    assert lo99 <= lo and hi99 >= hi


def test_bootstrap_coverage_on_known_distribution():
    """~95% of seeded CIs must cover the true median of a known
    normal — the estimator is calibrated, not just deterministic."""
    true_median = 50.0
    covered = 0
    trials = 100
    for trial in range(trials):
        rng = random.Random(1000 + trial)
        samples = [rng.gauss(true_median, 4.0) for _ in range(30)]
        lo, hi = bootstrap_ci(samples, confidence=0.95, seed=trial)
        covered += lo <= true_median <= hi
    # percentile bootstrap under-covers slightly at n=30; accept the
    # standard tolerance band around nominal 95%
    assert covered >= 85


def test_single_sample_degenerates_to_point_interval():
    assert bootstrap_ci([3.5]) == (3.5, 3.5)
    est = estimate([3.5])
    assert (est.lo, est.hi) == (3.5, 3.5)
    assert est.halfwidth == 0.0


def test_estimate_carries_both_centers_and_scales():
    est = estimate([1.0, 2.0, 3.0, 10.0], center="median")
    assert est.n == 4
    assert est.mean == 4.0
    assert est.median == 2.5
    assert est.lo <= est.median <= est.hi
    ms = est.scaled(1e3)
    assert isinstance(ms, Estimate)
    assert ms.median == 2500.0 and ms.n == 4
    with pytest.raises(ValueError):
        estimate([1.0], center="mode")


def test_aggregate_rate_is_ratio_of_sums():
    # 100 bytes in 1 s plus 100 bytes in 3 s: the sound aggregate is
    # 50 B/s, not mean-of-ratios (100+33.3)/2 = 66.7 B/s.
    assert aggregate_rate([100.0, 100.0], [1.0, 3.0]) == pytest.approx(50.0)
    assert aggregate_rate([100.0, 100.0], [1.0, 3.0]) != pytest.approx(
        mean([100.0, 100.0 / 3.0])
    )
    with pytest.raises(ValueError):
        aggregate_rate([100.0], [0.0])
    with pytest.raises(ValueError):
        aggregate_rate([100.0], [1.0, 2.0])


def test_stats_spec_token_round_trips():
    for spec in (
        StatsSpec(),
        StatsSpec(reps=5, confidence=0.99, seed=3),
        StatsSpec(reps=40, confidence=0.9),
    ):
        assert parse_stats_spec(spec.token()) == spec
    assert parse_stats_spec("reps=7") == StatsSpec(reps=7)
    spec = StatsSpec(reps=5)
    assert parse_stats_spec(spec) is spec


def test_stats_spec_validation_and_parse_errors():
    with pytest.raises(ValueError, match="reps"):
        StatsSpec(reps=0)
    with pytest.raises(ValueError, match="confidence"):
        StatsSpec(confidence=1.0)
    with pytest.raises(ValueError, match="reps, confidence, seed"):
        parse_stats_spec("samples=3")
    with pytest.raises(ValueError, match="duplicate"):
        parse_stats_spec("reps=3,reps=4")
    with pytest.raises(ValueError, match="key=value"):
        parse_stats_spec("reps")


def test_rep_seeds_are_distinct_and_deterministic():
    spec = StatsSpec(reps=4, seed=10)
    assert rep_seeds(spec) == (10, 11, 12, 13)
    collected = run_reps(lambda s: float(s), spec)
    assert collected == (10.0, 11.0, 12.0, 13.0)


def test_rep_networks_offsets_fabric_seeds():
    spec = StatsSpec(reps=3, seed=0)
    nets = rep_networks("wan:jitter=10%,seed=5", spec)
    assert [n.seed for n in nets] == [5, 6, 7]
    assert all(n.base == "wan" and n.jitter == 0.1 for n in nets)
    # bare names coerce; clean fabrics still fan out over seeds (the
    # seed only matters once a noise knob or loss is set)
    assert all(isinstance(n, FabricSpec) for n in rep_networks("ethernet", spec))
    # prebuilt model instances cannot be re-seeded: repeat unchanged
    model = get_network("ethernet")
    assert rep_networks(model, spec) == (model, model, model)
