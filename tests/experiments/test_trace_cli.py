"""CLI tests for the ``trace`` subcommand and the goldens fixture flow."""

import json

import pytest

from repro.experiments.cli import main


def test_trace_prints_summary(capsys):
    assert main(["trace", "pingpong"]) == 0
    out = capsys.readouterr().out
    assert "events:" in out
    assert "transport" in out
    assert "per-rank counters" in out


def test_trace_writes_jsonl(tmp_path, capsys):
    path = tmp_path / "trace.jsonl"
    assert main(["trace", "pingpong", "--output", str(path)]) == 0
    lines = path.read_text().strip().splitlines()
    events = [json.loads(line) for line in lines]
    assert events[0]["kind"] == "job_start"
    assert events[-1]["kind"] == "job_end"
    assert all("t" in e and "layer" in e for e in events)


def test_trace_writes_chrome_format(tmp_path, capsys):
    path = tmp_path / "trace.json"
    assert (
        main(["trace", "enc_multipair", "--format", "chrome",
              "--output", str(path)]) == 0
    )
    doc = json.loads(path.read_text())
    evs = doc["traceEvents"]
    assert any(e["ph"] == "X" and e["cat"] == "aead" for e in evs)
    assert any(e["ph"] == "B" for e in evs)


def test_trace_write_goldens_round_trips(tmp_path, capsys):
    from repro.experiments import goldens

    path = tmp_path / "golden_traces.json"
    assert main(["trace", "--write-goldens", str(path)]) == 0
    doc = goldens.load_fixture(str(path))
    assert set(doc["runs"]) == set(goldens.GOLDEN_RUNS)
    # regenerating produces the identical document (determinism, again)
    assert goldens.generate_fixture() == doc


def test_trace_mode_aggregate_prints_comm_trace(capsys):
    assert main(["trace", "pingpong", "--mode", "aggregate"]) == 0
    out = capsys.readouterr().out
    # the aggregate CommTrace view, not the event summary
    assert "per-rank counters" not in out
    assert "->" in out or "messages" in out


def test_trace_mode_off_is_rejected(capsys):
    assert main(["trace", "pingpong", "--mode", "off"]) == 2
    assert "records nothing" in capsys.readouterr().err


def test_trace_mode_unknown_string_names_valid_modes(capsys):
    with pytest.raises(SystemExit) as exc_info:
        main(["trace", "pingpong", "--mode", "eventz"])
    assert exc_info.value.code == 2
    err = capsys.readouterr().err
    # the parser's message survives argparse, naming the valid modes
    assert "eventz" in err and "'events'" in err


def test_trace_aggregate_mode_refuses_output(tmp_path, capsys):
    assert main(["trace", "pingpong", "--mode", "aggregate",
                 "--output", str(tmp_path / "t.jsonl")]) == 2
    assert "--mode events" in capsys.readouterr().err


def test_trace_without_workload_errors(capsys):
    assert main(["trace"]) == 2
    assert "workload" in capsys.readouterr().err


def test_bench_check_tracing_requires_baseline(capsys):
    assert main(["bench", "--check-tracing"]) == 2
    assert "--baseline" in capsys.readouterr().err


def test_check_tracing_overhead_logic(tmp_path):
    """Drive the checker against a synthetic baseline: absurdly large
    baseline times pass, absurdly small ones fail."""
    from repro.experiments import bench

    def fake_baseline(seconds):
        return {
            "schema": bench.SCHEMA,
            "mode": "smoke",
            "benches": {name: {"seconds": seconds}
                        for name in bench.TRACING_SENSITIVE},
        }

    ok, report = bench.check_tracing_overhead(
        fake_baseline(1e9), mode="smoke", reps=1
    )
    assert ok and "PASS" in report
    ok, report = bench.check_tracing_overhead(
        fake_baseline(1e-9), mode="smoke", reps=1
    )
    assert not ok and "FAIL" in report
    with pytest.raises(ValueError, match="mode"):
        bench.check_tracing_overhead(fake_baseline(1.0), mode="full", reps=1)
