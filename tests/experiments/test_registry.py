"""Experiment registry and artifact tests."""

import pytest

from repro.experiments import paperdata
from repro.experiments.registry import (
    EXPERIMENTS,
    get_experiment,
    list_experiments,
    select,
)
from repro.experiments.report import Artifact
from repro.util.tables import Table


def test_every_paper_artifact_is_registered():
    """The paper's evaluation has Tables I-VIII and Figs. 2-15; all must
    have a regenerator."""
    expected = {f"table{i}" for i in range(1, 9)} | {
        f"fig{i}" for i in range(2, 16)
    }
    assert expected <= set(EXPERIMENTS)
    # Extras beyond the paper are allowed (scalability grid).
    assert "scalability" in EXPERIMENTS


def test_get_experiment():
    exp = get_experiment("TABLE1")
    assert exp.paper_ref == "Table I"
    with pytest.raises(ValueError):
        get_experiment("table99")


def test_costs_are_classified():
    for exp in list_experiments():
        assert exp.cost in ("fast", "medium", "slow")


def test_select_expands_tier_tokens_in_registry_order():
    registry_order = [e.id for e in list_experiments()]
    everything = [e.id for e in select(["all"])]
    assert everything == registry_order
    fast = [e.id for e in select(["fast"])]
    medium = [e.id for e in select(["medium"])]
    slow = [e.id for e in select(["slow"])]
    assert fast and medium and slow
    assert all(get_experiment(i).cost == "fast" for i in fast)
    assert all(get_experiment(i).cost == "medium" for i in medium)
    not_slow = [e.id for e in select(["not-slow"])]
    assert not_slow == [i for i in registry_order
                        if get_experiment(i).cost != "slow"]
    assert set(not_slow) == set(fast) | set(medium)


def test_select_dedupes_and_keeps_first_position():
    # an explicit id before "all" keeps its position; "all" fills the rest
    ids = [e.id for e in select(["fig6", "all"])]
    assert ids[0] == "fig6"
    assert ids.count("fig6") == 1
    assert set(ids) == set(EXPERIMENTS)
    # duplicates collapse
    assert [e.id for e in select(["fig2", "FIG2", "fig2"])] == ["fig2"]


def test_select_is_case_insensitive_and_validates():
    assert [e.id for e in select(["TABLE1"])] == ["table1"]
    assert [e.id for e in select(["Not-Slow"])] == [
        e.id for e in select(["not-slow"])
    ]
    with pytest.raises(ValueError, match="unknown experiment"):
        select(["fig2", "nope"])
    assert select([]) == []


def test_artifact_render_includes_headlines_and_notes():
    t = Table("demo", ["a"])
    t.add_row("row", [1.0])
    art = Artifact("x", "demo title", t, notes=["be careful"],
                   headlines={"metric": (1.5, 2.0), "nopaper": (3.0, None)})
    out = art.render()
    assert "demo title" in out
    assert "metric: 1.50 (paper 2.00)" in out
    assert "nopaper: 3.00 (paper n/a)" in out
    assert "note: be careful" in out


def test_paperdata_consistency():
    # NAS tables cover all 7 benchmarks in all rows.
    for table in (paperdata.TABLE4_NAS_ETH_S, paperdata.TABLE8_NAS_IB_S):
        for row, vals in table.items():
            assert set(vals) == set(paperdata.NAS_NAMES), row
    # Headline overheads follow from the table totals (paper footnote 2).
    for net, table in (("ethernet", paperdata.TABLE4_NAS_ETH_S),
                       ("infiniband", paperdata.TABLE8_NAS_IB_S)):
        base = sum(table["baseline"].values())
        for lib in paperdata.LIBS:
            ovh = (sum(table[lib].values()) - base) / base * 100
            assert ovh == pytest.approx(
                paperdata.NAS_OVERHEAD_HEADLINE[net][lib], abs=0.05
            ), (net, lib)


def test_paper_collective_tables_ordered_by_library():
    """In every paper collective table, more crypto -> more time."""
    for table in (paperdata.TABLE2_BCAST_ETH_US, paperdata.TABLE3_ALLTOALL_ETH_US,
                  paperdata.TABLE6_BCAST_IB_US, paperdata.TABLE7_ALLTOALL_IB_US):
        for size in table["baseline"]:
            assert table["baseline"][size] < table["boringssl"][size]
            # BoringSSL <= Libsodium <= CryptoPP holds except one small
            # -message cell the paper itself flags as noise.
            if size >= 16 * 1024:
                assert table["boringssl"][size] < table["libsodium"][size]
                assert table["libsodium"][size] < table["cryptopp"][size]
