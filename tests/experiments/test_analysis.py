"""Tests for the overhead-decomposition analysis API."""

import pytest

from repro.experiments.analysis import crossover_size, explain_pingpong
from repro.util.units import KiB, MiB
from repro.workloads.pingpong import pingpong_oneway_time


def test_headline_decompositions_match_paper():
    eth = explain_pingpong("ethernet", "boringssl", 2 * MiB)
    assert eth.overhead_percent == pytest.approx(78.3, abs=8)
    ib = explain_pingpong("infiniband", "boringssl", 2 * MiB)
    assert ib.overhead_percent == pytest.approx(215.2, abs=15)
    # Crypto dominates on IB (>2/3 of total), not on Ethernet (<1/2).
    assert ib.crypto_share > 0.6
    assert eth.crypto_share < 0.5


def test_model_agrees_with_simulator():
    """The additive estimate and the full simulation agree for
    ping-pong within a few percent (the paper's own sanity check)."""
    for network in ("ethernet", "infiniband"):
        for size in (256, 16 * KiB, 2 * MiB):
            model = explain_pingpong(network, "libsodium", size).total_seconds
            sim = pingpong_oneway_time(size, network=network, library="libsodium")
            assert sim == pytest.approx(model, rel=0.10), (network, size)


def test_encrypt_equals_decrypt():
    b = explain_pingpong("ethernet", "cryptopp", 1 * MiB)
    assert b.encrypt_seconds == b.decrypt_seconds
    assert b.total_seconds > b.baseline_seconds


def test_render_readable():
    out = explain_pingpong("infiniband", "boringssl", 2 * MiB).render()
    assert "2MB over infiniband" in out
    assert "+2" in out  # ~215% overhead appears
    assert "crypto" in out


def test_crossover_sizes_ordered_by_library_and_network():
    """Faster crypto and slower networks tolerate larger messages
    before the 10% overhead line."""
    eth_boring = crossover_size("ethernet", "boringssl")
    eth_cpp = crossover_size("ethernet", "cryptopp")
    ib_boring = crossover_size("infiniband", "boringssl")
    assert eth_boring >= eth_cpp
    assert eth_boring >= ib_boring
    assert eth_boring >= 1024  # small messages are cheap on Ethernet


def test_validation():
    with pytest.raises(ValueError):
        explain_pingpong("ethernet", "boringssl", 0)
    with pytest.raises(ValueError):
        crossover_size("ethernet", "boringssl", overhead_target=0)
