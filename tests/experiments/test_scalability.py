"""Scalability-grid experiment tests (scaled-down via direct workload
calls; the full grid runs in the registry artifact)."""

from repro.experiments.scalability import SETTINGS, scalability


def test_settings_match_paper_methodology():
    labels = [label for label, _n, _c in SETTINGS]
    assert labels == ["4r/4n", "16r/4n", "16r/8n", "64r/8n"]
    for _label, nranks, cluster in SETTINGS:
        cluster.validate_ranks(nranks)


def test_scalability_artifact_shape():
    art = scalability(op="bcast", size=4096, network="ethernet")
    out = art.body.render()
    assert "4r/4n" in out and "64r/8n" in out
    assert "boringssl ovh%" in out
    # Encrypted rows contain positive overheads at every setting.
    for label, cells in art.body.rows[1:]:
        assert all(float(c.replace(",", "")) > 0 for c in cells), label
