"""CLI tests for the nas/analyze subcommands."""

import pytest

from repro.experiments.cli import main


def test_nas_subcommand_ep(capsys):
    # EP is the cheap one: near-zero comm, nominal 13 s baseline.
    assert main(["nas", "ep", "--library", "boringssl"]) == 0
    out = capsys.readouterr().out
    assert "EP" in out
    assert "baseline" in out
    assert "+0.0" in out  # ~0% overhead


def test_nas_subcommand_unknown_benchmark():
    with pytest.raises(ValueError):
        main(["nas", "dc"])


def test_analyze_subcommand(capsys):
    assert main(["analyze", "2MB", "--network", "infiniband"]) == 0
    out = capsys.readouterr().out
    assert "2MB over infiniband" in out
    assert "encryption" in out
    assert "+219" in out  # the paper's 215.2% headline region


def test_analyze_ethernet_small(capsys):
    assert main(["analyze", "256B", "--library", "libsodium"]) == 0
    out = capsys.readouterr().out
    assert "256B over ethernet" in out
    assert "largest size" in out


def test_nas_subcommand_faults_and_resilience(capsys):
    # CG under a seeded lossy fabric with ack/retransmit armed: the run
    # completes and the faulty column shows a positive overhead.
    assert main([
        "nas", "cg",
        "--faults", "drop=0.004,corrupt=0.001,seed=11",
        "--resilience", "retries=6,timeout=0.0005,escalation=fail",
    ]) == 0
    out = capsys.readouterr().out
    assert "faulty" in out
    assert "baseline" in out


def test_nas_subcommand_bad_fault_spec(capsys):
    assert main(["nas", "cg", "--faults", "dorp=0.1"]) == 2
    err = capsys.readouterr().err
    assert "bad --faults/--resilience spec" in err
