"""CLI tests for the nas/analyze subcommands."""

import pytest

from repro.experiments.cli import main


def test_nas_subcommand_ep(capsys):
    # EP is the cheap one: near-zero comm, nominal 13 s baseline.
    assert main(["nas", "ep", "--library", "boringssl"]) == 0
    out = capsys.readouterr().out
    assert "EP" in out
    assert "baseline" in out
    assert "+0.0" in out  # ~0% overhead


def test_nas_subcommand_unknown_benchmark():
    with pytest.raises(ValueError):
        main(["nas", "dc"])


def test_analyze_subcommand(capsys):
    assert main(["analyze", "2MB", "--network", "infiniband"]) == 0
    out = capsys.readouterr().out
    assert "2MB over infiniband" in out
    assert "encryption" in out
    assert "+219" in out  # the paper's 215.2% headline region


def test_analyze_ethernet_small(capsys):
    assert main(["analyze", "256B", "--library", "libsodium"]) == 0
    out = capsys.readouterr().out
    assert "256B over ethernet" in out
    assert "largest size" in out
