"""Campaign executor tests: deterministic merge, parallel == serial,
failure isolation, manifest, callbacks."""

import json

import pytest

from repro.experiments import goldens, registry
from repro.experiments.campaign import CampaignResult, run_campaign

FAST_CHEAP = ["fig2", "fig9", "table1", "table5"]  # sub-second runners


def _bare(selection, **kw):
    """run_campaign without touching the filesystem."""
    kw.setdefault("results_dir", None)
    kw.setdefault("cache", False)
    kw.setdefault("write_artifacts", False)
    kw.setdefault("write_manifest", False)
    return run_campaign(selection, **kw)


def _boom():
    raise RuntimeError("synthetic campaign failure")


def test_serial_campaign_matches_direct_runner_output():
    from repro.experiments.report import artifact_dict

    result = _bare(["fig2"])
    assert isinstance(result, CampaignResult)
    assert result.ok and result.jobs == 1
    (cell,) = result.cells
    exp = registry.get_experiment("fig2")
    artifact = exp.runner()
    assert cell.artifact == json.loads(
        json.dumps(artifact_dict(exp, artifact))
    )
    assert cell.text == artifact.render()
    assert cell.worker > 0 and not cell.cached


def test_parallel_campaign_is_byte_identical_to_serial():
    serial = _bare(FAST_CHEAP, jobs=1)
    parallel = _bare(FAST_CHEAP, jobs=4)
    assert [c.experiment_id for c in parallel.cells] == FAST_CHEAP
    for s_cell, p_cell in zip(serial.cells, parallel.cells):
        assert json.dumps(s_cell.artifact, sort_keys=True) == json.dumps(
            p_cell.artifact, sort_keys=True
        )
        assert s_cell.text == p_cell.text


def test_campaign_digest_identical_across_worker_counts():
    """The goldens-style cross-worker determinism probe."""
    assert goldens.campaign_digest(jobs=1) == goldens.campaign_digest(jobs=2)


def test_mixed_fast_medium_parallel_vs_serial_byte_equality(tmp_path):
    """The acceptance invariant over a mixed fast/medium selection, down
    to the exported artifact files' bytes."""
    selection = ["fig2", "table1", "table2"]  # fast, fast, medium
    ser_dir = tmp_path / "ser"
    par_dir = tmp_path / "par"
    ser = run_campaign(selection, jobs=1, cache=False,
                       results_dir=str(ser_dir))
    par = run_campaign(selection, jobs=4, cache=False,
                       results_dir=str(par_dir))
    assert ser.ok and par.ok
    for exp_id in selection:
        for suffix in (".json", ".txt"):
            assert (ser_dir / f"{exp_id}{suffix}").read_bytes() == (
                par_dir / f"{exp_id}{suffix}"
            ).read_bytes()


def test_failures_are_isolated_and_reported(monkeypatch):
    broken = registry.Experiment("broken", "Fig. X", "always fails", _boom,
                                 "fast")
    monkeypatch.setitem(registry.EXPERIMENTS, "broken", broken)
    result = _bare(["broken", "fig2"])
    assert not result.ok
    assert result.failed == ("broken",)
    assert "synthetic campaign failure" in result.cell("broken").error
    assert result.cell("fig2").ok  # the healthy cell still ran


def test_selection_accepts_experiment_objects_and_tokens():
    by_token = _bare(["fig2"])
    by_obj = _bare([registry.get_experiment("fig2")])
    assert by_token.cells[0].artifact == by_obj.cells[0].artifact
    with pytest.raises(ValueError, match="unknown experiment"):
        _bare(["not-an-experiment"])
    with pytest.raises(ValueError, match="jobs"):
        _bare(["fig2"], jobs=0)


def test_empty_selection_yields_empty_result():
    result = _bare([])
    assert result.cells == () and result.ok


def test_callbacks_fire_in_order_for_serial_runs():
    started, finished = [], []
    result = run_campaign(
        ["fig2", "table1"], jobs=1, cache=False, results_dir=None,
        write_artifacts=False, write_manifest=False,
        on_start=lambda exp, i, n: started.append((exp.id, i, n)),
        on_cell=lambda cell, done, n: finished.append((cell.experiment_id,
                                                       done, n)),
    )
    assert result.ok
    assert started == [("fig2", 0, 2), ("table1", 1, 2)]
    assert finished == [("fig2", 1, 2), ("table1", 2, 2)]


def test_manifest_records_cells_and_provenance(tmp_path):
    result = run_campaign(["fig2", "table1"], jobs=1, cache=True,
                          results_dir=str(tmp_path))
    assert result.manifest_path == str(tmp_path / "campaign.json")
    doc = json.loads((tmp_path / "campaign.json").read_text())
    assert doc["schema"] == 1
    assert doc["selection"] == ["fig2", "table1"]
    assert doc["code_fingerprint"] == result.code_fingerprint
    assert doc["finished"] >= doc["started"]
    for exp_id in ("fig2", "table1"):
        rec = doc["cells"][exp_id]
        assert rec["status"] == "ok"
        assert rec["cached"] is False
        assert rec["worker"] > 0
        assert rec["key"] == result.cell(exp_id).key
    # artifacts were exported alongside the manifest
    assert (tmp_path / "fig2.json").exists()
    assert (tmp_path / "table1.txt").exists()


def test_exported_artifacts_match_run_output_exports(tmp_path):
    """campaign --output and run --output must write identical bytes."""
    from repro.experiments.cli import main

    run_dir = tmp_path / "via_run"
    camp_dir = tmp_path / "via_campaign"
    assert main(["run", "fig2", "--output", str(run_dir)]) == 0
    run_campaign(["fig2"], jobs=1, cache=False, results_dir=str(camp_dir),
                 write_manifest=False)
    for suffix in (".json", ".txt"):
        assert (run_dir / f"fig2{suffix}").read_bytes() == (
            camp_dir / f"fig2{suffix}"
        ).read_bytes()
