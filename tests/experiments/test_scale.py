"""The scale experiment and its fluid collective model (reduced tier).

The committed ``results/scale.*`` artifacts are the full 4096-rank run;
these tests exercise the same code path capped to the cheapest point
via ``REPRO_SCALE_MAX_RANKS`` so tier-1 stays fast.
"""

import json

import pytest

from repro.experiments import scale as scale_mod
from repro.experiments.registry import get_experiment
from repro.experiments.report import artifact_dict
from repro.models.cryptolib import PROFILED_LIBRARIES, profile_for_network
from repro.models.network import get_network
from repro.simmpi.collectives.fluid import fluid_alltoall_phases


def test_registry_entry_is_slow_tier_with_the_scale_cluster():
    exp = get_experiment("scale")
    assert exp.cost == "slow"
    assert exp.cluster is scale_mod.SCALE_CLUSTER
    assert exp.cluster.token() == "1024x8"


def test_rank_points_env_cap(monkeypatch):
    monkeypatch.setenv(scale_mod.MAX_RANKS_ENV, "256")
    assert scale_mod._rank_points() == (64, 256)
    monkeypatch.setenv(scale_mod.MAX_RANKS_ENV, "10")
    with pytest.raises(ValueError, match="excludes every rank point"):
        scale_mod._rank_points()
    monkeypatch.setenv(scale_mod.MAX_RANKS_ENV, "lots")
    with pytest.raises(ValueError, match="integer"):
        scale_mod._rank_points()
    monkeypatch.delenv(scale_mod.MAX_RANKS_ENV)
    assert scale_mod._rank_points() == scale_mod.RANK_POINTS


def test_scale_artifact_reduced_tier_is_deterministic(monkeypatch):
    monkeypatch.setenv(scale_mod.MAX_RANKS_ENV, "64")
    exp = get_experiment("scale")
    first = json.dumps(artifact_dict(exp, scale_mod.scale()), sort_keys=True)
    second = json.dumps(artifact_dict(exp, scale_mod.scale()), sort_keys=True)
    assert first == second
    doc = json.loads(first)
    assert doc["kind"] == "figure"
    labels = [s["label"] for s in doc["series"]]
    assert labels[0] == "baseline"
    for lib in PROFILED_LIBRARIES:
        assert f"{lib}/serial" in labels
        assert f"{lib}/cryptmpi" in labels
    # ordering the paper's story rests on: encryption costs something,
    # and the cryptmpi plan claws part of it back
    by_label = {s["label"]: dict((x, y) for x, y in s["points"])
                for s in doc["series"]}
    base = by_label["baseline"][64]
    for lib in PROFILED_LIBRARIES:
        serial = by_label[f"{lib}/serial"][64]
        pipelined = by_label[f"{lib}/cryptmpi"][64]
        assert serial > base
        assert base <= pipelined < serial


# ---------------------------------------------------------- fluid phases

def test_fluid_phases_validation():
    cluster = scale_mod.SCALE_CLUSTER
    net = get_network("ethernet")
    with pytest.raises(ValueError, match=">= 2 ranks"):
        fluid_alltoall_phases(1, 1024, cluster=cluster, network=net)
    with pytest.raises(ValueError, match="msg_bytes"):
        fluid_alltoall_phases(4, 0, cluster=cluster, network=net)
    with pytest.raises(ValueError, match="exceed"):
        fluid_alltoall_phases(
            cluster.total_cores + 1, 1024, cluster=cluster, network=net
        )


def test_fluid_crypto_scales_with_rank_count():
    """Serial sealing is one wave per peer: doubling N doubles the seal
    phase exactly (same per-chunk cost, closed form)."""
    cluster = scale_mod.SCALE_CLUSTER
    net = get_network("ethernet")
    profile = profile_for_network("boringssl", "ethernet")
    small = fluid_alltoall_phases(
        1024, 4096, cluster=cluster, network=net, profile=profile)
    large = fluid_alltoall_phases(
        2048, 4096, cluster=cluster, network=net, profile=profile)
    seal_small = small.cpu_send_seconds
    seal_large = large.cpu_send_seconds
    assert seal_large > seal_small
    assert large.total_seconds > small.total_seconds


def test_fluid_pipelined_never_slower_than_serial():
    cluster = scale_mod.SCALE_CLUSTER
    net = get_network("ethernet")
    profile = profile_for_network("libsodium", "ethernet")
    for nranks in (64, 1024, 4096):
        serial = fluid_alltoall_phases(
            nranks, 16384, cluster=cluster, network=net, profile=profile)
        piped = fluid_alltoall_phases(
            nranks, 16384, cluster=cluster, network=net, profile=profile,
            pipelined=True)
        assert piped.total_seconds <= serial.total_seconds
