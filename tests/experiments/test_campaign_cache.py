"""Content-addressed result cache tests: key derivation (hit on
identical config, miss on any config change), code-fingerprint
invalidation, warm runs executing zero runners, resume semantics."""

import json

import pytest

from repro.encmpi import SecurityConfig
from repro.experiments import campaign
from repro.experiments.campaign import (
    ResultCache,
    cell_key,
    code_fingerprint,
    experiment_config_digest,
    job_config_digest,
    run_campaign,
)
from repro.experiments.registry import get_experiment


def _workload(ctx):
    return ctx.rank


# ---------------------------------------------------------------------------
# key derivation
# ---------------------------------------------------------------------------


def test_job_digest_hits_on_identical_config():
    a = job_config_digest(_workload, nranks=4, network="ethernet",
                          security=SecurityConfig())
    b = job_config_digest(_workload, nranks=4, network="ethernet",
                          security=SecurityConfig())
    assert a == b


def test_job_digest_misses_on_changed_security_config():
    base = job_config_digest(_workload, nranks=4,
                             security=SecurityConfig())
    changed = job_config_digest(_workload, nranks=4,
                                security=SecurityConfig(library="cryptopp"))
    assert base != changed
    # even a field the simulation outcome is insensitive to (backend)
    # flips the digest — false misses are cheap, false hits are wrong
    assert base != job_config_digest(
        _workload, nranks=4, security=SecurityConfig(backend="pure")
    )
    assert base != job_config_digest(_workload, nranks=4, security=None)


def test_job_digest_misses_on_changed_network_and_nranks():
    base = job_config_digest(_workload, nranks=4, network="ethernet")
    assert base != job_config_digest(_workload, nranks=4,
                                     network="infiniband")
    assert base != job_config_digest(_workload, nranks=8,
                                     network="ethernet")
    assert base != job_config_digest(_workload, nranks=4,
                                     network="ethernet", placement="round")


def test_job_digest_keyed_by_canonical_fabric_token():
    from repro.models.network import FabricSpec, get_network

    base = job_config_digest(_workload, nranks=4, network="ethernet")
    # the key changes iff the fabric token changes: aliases, the
    # FabricSpec spelling, and the model singleton all token to
    # "ethernet" and share the historical cache entry
    assert base == job_config_digest(_workload, nranks=4, network="eth")
    assert base == job_config_digest(_workload, nranks=4,
                                     network=FabricSpec(base="ethernet"))
    assert base == job_config_digest(_workload, nranks=4,
                                     network=get_network("ethernet"))
    # any noise knob (or a different seed on the same knobs) is a miss
    noisy = job_config_digest(
        _workload, nranks=4, network="ethernet:jitter=10%,seed=1"
    )
    assert noisy != base
    assert noisy == job_config_digest(
        _workload, nranks=4,
        network=FabricSpec(base="ethernet", jitter=0.1, seed=1),
    )
    assert noisy != job_config_digest(
        _workload, nranks=4, network="ethernet:jitter=10%,seed=2"
    )


def test_cell_key_invalidates_when_code_fingerprint_changes():
    exp = get_experiment("fig2")
    digest = experiment_config_digest(exp)
    assert cell_key("fig2", digest, "aaaa") != cell_key("fig2", digest,
                                                        "bbbb")
    assert cell_key("fig2", digest, "aaaa") == cell_key("fig2", digest,
                                                        "aaaa")


def test_code_fingerprint_is_stable_and_tracks_sources(tmp_path):
    assert code_fingerprint() == code_fingerprint()
    src = tmp_path / "mod.py"
    src.write_text("x = 1\n")
    before = code_fingerprint(str(tmp_path))
    src.write_text("x = 2\n")
    assert code_fingerprint(str(tmp_path)) != before


# ---------------------------------------------------------------------------
# the store
# ---------------------------------------------------------------------------


def test_result_cache_round_trip_and_corruption_reads_as_miss(tmp_path):
    store = ResultCache(str(tmp_path / "cache"))
    assert store.get("00ff") is None
    store.put("00ff", {"artifact": {"v": 1}, "text": "hi"})
    entry = store.get("00ff")
    assert entry["artifact"] == {"v": 1} and entry["key"] == "00ff"
    assert store.keys() == ["00ff"]
    # truncated/corrupt file: a miss, never an error
    (tmp_path / "cache" / "00ff.json").write_text("{not json")
    assert store.get("00ff") is None
    # wrong-key content (e.g. renamed file) is also a miss
    store.put("aaaa", {"artifact": {}, "text": ""})
    (tmp_path / "cache" / "bbbb.json").write_text(
        (tmp_path / "cache" / "aaaa.json").read_text()
    )
    assert store.get("bbbb") is None
    assert store.clear() >= 1
    assert len(store) == 0


# ---------------------------------------------------------------------------
# end-to-end campaign caching
# ---------------------------------------------------------------------------


def test_warm_campaign_executes_zero_runners(tmp_path, monkeypatch):
    cold = run_campaign(["fig2", "table1"], jobs=1,
                        results_dir=str(tmp_path))
    assert cold.misses == 2 and cold.hits == 0

    def no_runner(_exp_id):
        raise AssertionError("warm campaign must not execute any runner")

    monkeypatch.setattr(campaign, "_execute_experiment", no_runner)
    warm = run_campaign(["fig2", "table1"], jobs=1,
                        results_dir=str(tmp_path))
    assert warm.hits == 2 and warm.misses == 0
    for cold_cell, warm_cell in zip(cold.cells, warm.cells):
        assert warm_cell.cached and warm_cell.worker == -1
        assert warm_cell.artifact == cold_cell.artifact
        assert warm_cell.text == cold_cell.text
        assert warm_cell.seconds == pytest.approx(cold_cell.seconds)


def test_code_fingerprint_change_invalidates_campaign_cache(tmp_path,
                                                            monkeypatch):
    run_campaign(["fig2"], jobs=1, results_dir=str(tmp_path))
    monkeypatch.setattr(campaign, "code_fingerprint",
                        lambda root=None: "deadbeefdeadbeef")
    rerun = run_campaign(["fig2"], jobs=1, results_dir=str(tmp_path))
    assert rerun.misses == 1 and rerun.hits == 0


def test_no_cache_mode_always_executes(tmp_path):
    first = run_campaign(["fig2"], jobs=1, cache=False,
                         results_dir=str(tmp_path))
    second = run_campaign(["fig2"], jobs=1, cache=False,
                          results_dir=str(tmp_path))
    assert first.misses == second.misses == 1
    assert not (tmp_path / "cache").exists()


def test_failed_cells_are_not_cached(tmp_path, monkeypatch):
    from repro.experiments import registry

    calls = {"n": 0}

    def flaky():
        calls["n"] += 1
        raise RuntimeError("flaky runner")

    broken = registry.Experiment("flaky", "Fig. X", "flaky", flaky, "fast")
    monkeypatch.setitem(registry.EXPERIMENTS, "flaky", broken)
    first = run_campaign(["flaky"], jobs=1, results_dir=str(tmp_path))
    second = run_campaign(["flaky"], jobs=1, results_dir=str(tmp_path))
    assert not first.ok and not second.ok
    assert calls["n"] == 2  # the failure was re-executed, not served


def test_resume_reuses_manifest_cells_without_cache(tmp_path):
    """--resume restores finished cells from the manifest + exported
    artifact files even when the content cache is disabled."""
    cold = run_campaign(["fig2", "table1"], jobs=1, cache=False,
                        results_dir=str(tmp_path))
    assert cold.misses == 2
    resumed = run_campaign(["fig2", "table1"], jobs=1, cache=False,
                           resume=True, results_dir=str(tmp_path))
    assert resumed.hits == 2 and resumed.misses == 0
    assert resumed.cells[0].artifact == cold.cells[0].artifact
    assert resumed.cells[0].text == cold.cells[0].text
    # a stale manifest (different code fingerprint) is ignored
    doc = json.loads((tmp_path / "campaign.json").read_text())
    doc["code_fingerprint"] = "0000000000000000"
    (tmp_path / "campaign.json").write_text(json.dumps(doc))
    invalidated = run_campaign(["fig2"], jobs=1, cache=False, resume=True,
                               results_dir=str(tmp_path))
    assert invalidated.misses == 1


def test_interrupted_campaign_resumes_only_missing_cells(tmp_path,
                                                         monkeypatch):
    """Simulate a crash after the first cell: the second campaign only
    executes what is missing (the resumable-manifest contract)."""
    real_execute = campaign._execute_experiment
    executed: list[str] = []

    def crashy(exp_id):
        executed.append(exp_id)
        if exp_id == "table1":
            raise KeyboardInterrupt  # user hits ^C mid-campaign
        return real_execute(exp_id)

    monkeypatch.setattr(campaign, "_execute_experiment", crashy)
    with pytest.raises(KeyboardInterrupt):
        run_campaign(["fig2", "table1"], jobs=1, results_dir=str(tmp_path))
    assert executed == ["fig2", "table1"]
    # the partial manifest still records fig2 as done
    doc = json.loads((tmp_path / "campaign.json").read_text())
    assert doc["cells"]["fig2"]["status"] == "ok"
    assert "table1" not in doc["cells"]

    def tracking(exp_id):
        executed.append(exp_id)
        return real_execute(exp_id)

    monkeypatch.setattr(campaign, "_execute_experiment", tracking)
    executed.clear()
    second = run_campaign(["fig2", "table1"], jobs=1,
                          results_dir=str(tmp_path))
    assert second.ok
    assert second.cell("fig2").cached  # served from the cache
    assert second.cell("table1").cached is False
    assert executed == ["table1"]  # only the missing cell executed


def test_experiment_digest_salted_by_crypto_plan_and_cluster():
    """The campaign-wide CryptoPlan and an experiment's cluster override
    are both cache-key inputs: serial and cryptmpi runs of one cell, or
    the same cell on different node shapes, occupy distinct entries."""
    from dataclasses import replace

    from repro.encmpi import CryptoPlan, parse_crypto_plan
    from repro.models.cpu import ClusterSpec

    exp = get_experiment("fig2")
    base = experiment_config_digest(exp)
    assert base == experiment_config_digest(exp)  # stable

    piped = parse_crypto_plan("cryptmpi:chunk=256k,cores=3")
    assert experiment_config_digest(exp, piped) != base
    assert experiment_config_digest(exp, CryptoPlan()) != base
    assert (experiment_config_digest(exp, piped)
            != experiment_config_digest(exp, CryptoPlan()))
    # equal plans, however spelled, land on the same entry
    assert (experiment_config_digest(exp, piped)
            == experiment_config_digest(
                exp, parse_crypto_plan(piped.token())))

    wide = replace(exp, cluster=ClusterSpec(nodes=4, cores_per_node=8))
    assert experiment_config_digest(wide) != base
    assert (experiment_config_digest(wide, piped)
            != experiment_config_digest(exp, piped))


def test_job_digest_misses_on_cluster_shape():
    from repro.models.cpu import ClusterSpec

    base = job_config_digest(_workload, nranks=4)
    assert base != job_config_digest(
        _workload, nranks=4, cluster=ClusterSpec(nodes=2, cores_per_node=8)
    )
