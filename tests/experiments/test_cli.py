"""CLI tests (fast paths only)."""

import pytest

from repro.experiments.cli import main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "table1" in out
    assert "fig15" in out
    assert "Table I" in out


def test_run_single_fast_experiment(capsys):
    assert main(["run", "fig2"]) == 0
    out = capsys.readouterr().out
    assert "Encryption-decryption throughput" in out
    assert "BoringSSL" in out
    assert "(paper" in out


def test_run_table1(capsys):
    assert main(["run", "table1"]) == 0
    out = capsys.readouterr().out
    assert "(paper) Unencrypted" in out


def test_run_deduplicates(capsys):
    assert main(["run", "fig2", "fig2"]) == 0
    out = capsys.readouterr().out
    assert out.count("--- running fig2") == 1


def test_run_with_output_dir(tmp_path, capsys):
    import json

    assert main(["run", "fig2", "--output", str(tmp_path)]) == 0
    capsys.readouterr()
    assert (tmp_path / "fig2.txt").exists()
    data = json.loads((tmp_path / "fig2.json").read_text())
    assert data["kind"] == "figure"
    assert data["paper_ref"] == "Fig. 2"
    assert any(s["label"] == "BoringSSL" for s in data["series"])
    assert data["headlines"]


def test_run_table_output_json(tmp_path, capsys):
    import json

    assert main(["run", "table1", "--output", str(tmp_path)]) == 0
    capsys.readouterr()
    data = json.loads((tmp_path / "table1.json").read_text())
    assert data["kind"] == "table"
    assert data["columns"] == ["1B", "16B", "256B", "1KB"]
    labels = [r["label"] for r in data["rows"]]
    assert "Unencrypted" in labels and "  (paper) CryptoPP" in labels


def test_run_unknown_experiment():
    with pytest.raises(ValueError):
        main(["run", "table42"])


def test_requires_subcommand():
    with pytest.raises(SystemExit):
        main([])
