"""CLI tests (fast paths only)."""

import pytest

from repro.experiments.cli import main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "table1" in out
    assert "fig15" in out
    assert "Table I" in out


def test_run_single_fast_experiment(capsys):
    assert main(["run", "fig2"]) == 0
    out = capsys.readouterr().out
    assert "Encryption-decryption throughput" in out
    assert "BoringSSL" in out
    assert "(paper" in out


def test_run_table1(capsys):
    assert main(["run", "table1"]) == 0
    out = capsys.readouterr().out
    assert "(paper) Unencrypted" in out


def test_run_deduplicates(capsys):
    assert main(["run", "fig2", "fig2"]) == 0
    out = capsys.readouterr().out
    assert out.count("--- running fig2") == 1


def test_run_with_output_dir(tmp_path, capsys):
    import json

    assert main(["run", "fig2", "--output", str(tmp_path)]) == 0
    capsys.readouterr()
    assert (tmp_path / "fig2.txt").exists()
    data = json.loads((tmp_path / "fig2.json").read_text())
    assert data["kind"] == "figure"
    assert data["paper_ref"] == "Fig. 2"
    assert any(s["label"] == "BoringSSL" for s in data["series"])
    assert data["headlines"]


def test_run_table_output_json(tmp_path, capsys):
    import json

    assert main(["run", "table1", "--output", str(tmp_path)]) == 0
    capsys.readouterr()
    data = json.loads((tmp_path / "table1.json").read_text())
    assert data["kind"] == "table"
    assert data["columns"] == ["1B", "16B", "256B", "1KB"]
    labels = [r["label"] for r in data["rows"]]
    assert "Unencrypted" in labels and "  (paper) CryptoPP" in labels


def test_run_unknown_experiment():
    with pytest.raises(ValueError):
        main(["run", "table42"])


def test_requires_subcommand():
    with pytest.raises(SystemExit):
        main([])


def test_run_json_flag_prints_structured_document(capsys):
    import json

    assert main(["run", "fig2", "--json"]) == 0
    out = capsys.readouterr().out
    data = json.loads(out)
    assert data["experiment"] == "fig2"
    assert data["kind"] == "figure"
    # rendered chrome must not pollute the JSON stream
    assert "--- running" not in out


def test_run_json_flag_multiple_ids_yields_list(capsys):
    import json

    assert main(["run", "fig2", "table1", "--json"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert [d["experiment"] for d in data] == ["fig2", "table1"]


def _boom():
    raise RuntimeError("synthetic artifact failure")


def test_run_failure_exits_nonzero_with_summary(capsys, monkeypatch):
    from repro.experiments import registry

    broken = registry.Experiment("broken", "Fig. X", "always fails", _boom,
                                 "fast")
    monkeypatch.setitem(registry.EXPERIMENTS, "broken", broken)
    assert main(["run", "broken", "fig2"]) == 1
    err = capsys.readouterr().err
    assert "broken FAILED" in err
    assert "synthetic artifact failure" in err
    assert "1 of 2 experiments failed: broken" in err


def test_campaign_cold_then_warm_cache(tmp_path, capsys):
    out = str(tmp_path)
    assert main(["campaign", "fig2", "--output", out]) == 0
    cold = capsys.readouterr().out
    assert "--- campaign: 1 cells, 1 worker(s), cache on" in cold
    assert "fig2" in cold and "worker" in cold
    assert "campaign: 1 ok, 0 failed" in cold
    assert "manifest:" in cold
    # a second run is served entirely from the cache
    assert main(["campaign", "fig2", "--output", out,
                 "--expect-all-cached"]) == 0
    warm = capsys.readouterr().out
    assert "cache hit" in warm
    assert "(1 cache hit(s), 0 executed)" in warm


def test_campaign_expect_all_cached_fails_cold(tmp_path, capsys):
    assert main(["campaign", "fig2", "--output", str(tmp_path),
                 "--expect-all-cached"]) == 1
    err = capsys.readouterr().err
    assert "--expect-all-cached" in err
    assert "fig2" in err


def test_campaign_failure_lists_failed_cells(tmp_path, capsys, monkeypatch):
    from repro.experiments import registry

    broken = registry.Experiment("broken", "Fig. X", "always fails", _boom,
                                 "fast")
    monkeypatch.setitem(registry.EXPERIMENTS, "broken", broken)
    assert main(["campaign", "broken", "fig2", "--no-cache",
                 "--output", str(tmp_path)]) == 1
    captured = capsys.readouterr()
    assert "broken       FAILED" in captured.out
    assert "failed: broken" in captured.err
    # the healthy cell still ran and exported its artifact
    assert (tmp_path / "fig2.json").exists()


def test_campaign_rejects_empty_selection(capsys, monkeypatch):
    from repro.experiments import registry

    monkeypatch.setattr(registry, "EXPERIMENTS", {})
    assert main(["campaign"]) == 2
    assert "no experiments selected" in capsys.readouterr().err


def test_bench_smoke_subcommand(tmp_path, capsys):
    import json

    out_path = tmp_path / "bench.json"
    assert main(["bench", "--smoke", "--output", str(out_path)]) == 0
    out = capsys.readouterr().out
    assert "gcm_seal" in out
    doc = json.loads(out_path.read_text())
    assert doc["mode"] == "smoke"
    assert doc["benches"]["experiment_fig6"]["seconds"] is None


def test_bench_baseline_comparison(tmp_path, capsys):
    out_path = tmp_path / "bench.json"
    assert main(["bench", "--smoke", "--output", str(out_path)]) == 0
    capsys.readouterr()
    assert main(["bench", "--smoke", "--baseline", str(out_path)]) == 0
    assert "speedup" in capsys.readouterr().out
