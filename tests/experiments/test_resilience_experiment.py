"""The registered ``resilience`` experiment: fault-rate x policy sweep."""

from repro.experiments.registry import get_experiment
from repro.experiments.report import artifact_dict


def test_registered_with_medium_cost():
    # medium keeps the fast tier's artifacts (and golden digests)
    # byte-identical to pre-resilience builds
    exp = get_experiment("resilience")
    assert exp.cost == "medium"
    assert "retransmit" in exp.title or "faults" in exp.title


def test_two_runs_render_byte_identical():
    exp = get_experiment("resilience")
    a, b = exp.runner(), exp.runner()
    assert a.render() == b.render()
    assert artifact_dict(exp, a) == artifact_dict(exp, b)


def test_faults_cost_goodput_and_backoff_modes_diverge():
    exp = get_experiment("resilience")
    table = exp.runner().body
    cells = {label: row for label, row in table.rows}
    # goodput at 30% faults is strictly below the fault-free cell
    for pol in ("exponential", "fixed"):
        clean = float(cells[f"{pol} @ 0% faults"][0])
        lossy = float(cells[f"{pol} @ 30% faults"][0])
        assert lossy < clean
    # multi-retry flights make the backoff disciplines distinguishable
    assert (
        cells["exponential @ 30% faults"][1] != cells["fixed @ 30% faults"][1]
    )
