"""The ``predict`` experiment's grid discipline, registry entry, and
the ``predict`` CLI subcommand (the full validation sweep itself is
exercised by ``make check-predict``)."""

import json

import pytest

from repro.experiments import predict as exp
from repro.experiments.cli import main
from repro.experiments.registry import get_experiment
from repro.models.cpu import ClusterSpec


def test_off_anchor_sizes_exclude_anchored():
    anchored = {512, 1024, 4096, 65536}
    sizes = exp._off_anchor_sizes(anchored)
    assert sizes == sorted(sizes)
    assert not anchored & set(sizes)
    assert sizes[0] >= exp.SIZE_MIN
    assert sizes[-1] <= exp.SIZE_MIN * 2 ** exp.SIZE_OCTAVES


def test_grid_is_larger_than_anchor_floor():
    # every anchored ping-pong size removed still leaves a dense grid
    from repro.models.predict import anchor_cells

    anchored = {c.size for c in anchor_cells() if c.kind == "pingpong"}
    assert len(exp._off_anchor_sizes(anchored)) > 80


def test_registry_entry():
    entry = get_experiment("predict")
    assert entry.cost == "medium"
    assert entry.cluster == ClusterSpec(nodes=2, cores_per_node=8)
    assert entry.runner is exp.predict_validation


# ------------------------------------------------------------ CLI surface

def test_cli_predict_human_output(capsys):
    assert main(["predict", "1MB", "--library", "boringssl",
                 "--network", "infiniband"]) == 0
    out = capsys.readouterr().out
    assert "one-way latency" in out
    assert "infiniband/boringssl" in out


def test_cli_predict_json_multipair(capsys):
    assert main(["predict", "64KB", "--pairs", "4", "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["pairs"] == 4
    assert doc["library"] is None
    assert doc["goodput_Bps"] == pytest.approx(
        4 * doc["per_pair_goodput_Bps"])
    lo, hi = doc["latency_bounds_s"]
    assert lo <= doc["latency_s"] <= hi
    assert 0.0 < doc["confidence"] <= 0.95


def test_cli_predict_bad_size(capsys):
    assert main(["predict", "one-meg"]) == 2
    assert "bad size" in capsys.readouterr().err


def test_cli_predict_missing_size(capsys):
    assert main(["predict"]) == 2
    assert "size" in capsys.readouterr().err


def test_cli_predict_bad_fault_spec(capsys):
    assert main(["predict", "4KB", "--library", "openssl",
                 "--faults", "loss=0.1"]) == 2
    err = capsys.readouterr().err
    assert "bad --faults/--resilience spec" in err
    assert "drop" in err  # names the valid keys


def test_cli_predict_bad_resilience_spec(capsys):
    assert main(["predict", "4KB", "--library", "openssl",
                 "--resilience", "attempts=3"]) == 2
    assert "bad --faults/--resilience spec" in capsys.readouterr().err


def test_cli_predict_plan_without_library(capsys):
    assert main(["predict", "1MB", "--crypto", "cryptmpi:chunk=64k"]) == 2
    assert "bad prediction query" in capsys.readouterr().err


def test_cli_predict_faults_without_resilience(capsys):
    assert main(["predict", "4KB", "--library", "openssl",
                 "--faults", "drop=0.1"]) == 2
    assert "bad prediction query" in capsys.readouterr().err
