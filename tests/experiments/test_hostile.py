"""The hostile experiment: capped-rep determinism and artifact shape."""

import json

import pytest

from repro.experiments import hostile as hostile_mod
from repro.experiments.registry import get_experiment
from repro.experiments.report import artifact_dict


@pytest.fixture()
def capped_reps(monkeypatch):
    monkeypatch.setenv(hostile_mod.REPS_ENV, "2")


def test_registered_as_medium_tier():
    exp = get_experiment("hostile")
    assert exp.cost == "medium"
    assert exp.runner is hostile_mod.hostile


@pytest.mark.slow
def test_hostile_is_byte_deterministic(capped_reps):
    exp = get_experiment("hostile")
    a = artifact_dict(exp, hostile_mod.hostile())
    b = artifact_dict(exp, hostile_mod.hostile())
    assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)


@pytest.mark.slow
def test_hostile_table_covers_the_grid(capped_reps):
    art = hostile_mod.hostile()
    labels = [row[0] for row in art.body.rows]
    # 2 libraries x 2 fabrics x 2 loss rates x 2 policies ping-pong
    # cells, 4 multipair cells, 4 mtlatency cells
    assert len(labels) == 16 + 4 + 4
    assert sum(lab.startswith("pp ") for lab in labels) == 16
    assert sum(lab.startswith("mp ") for lab in labels) == 4
    assert sum(lab.startswith("mt ") for lab in labels) == 4
    for fabric in ("wan", "iot"):
        assert any(fabric in lab for lab in labels)
    assert art.headlines  # policy + channel comparisons present
