"""Network model tests: calibration anchors and paper identities."""

import pytest

from repro.models.cryptolib import get_profile
from repro.models.network import ethernet_10g, get_network, infiniband_40g
from repro.util.units import KiB, MiB


def test_factory_aliases():
    assert get_network("eth").name == "ethernet"
    assert get_network("ib").name == "infiniband"
    with pytest.raises(KeyError, match="valid fabric presets"):
        get_network("carrier-pigeon")


def test_ethernet_pingpong_anchors():
    net = ethernet_10g()
    # Table I baseline row: time = size / throughput.
    assert net.pingpong_oneway_time(1) == pytest.approx(1 / 0.050e6, rel=1e-6)
    assert net.pingpong_oneway_time(256) == pytest.approx(256 / 7.01e6, rel=1e-6)
    assert net.pingpong_oneway_time(1 * KiB) == pytest.approx(
        1024 / 17.03e6, rel=1e-6
    )
    # §V-A: 1038 MB/s at 2 MB.
    assert net.pingpong_oneway_time(2 * MiB) == pytest.approx(
        2 * MiB / 1038e6, rel=1e-6
    )


def test_infiniband_pingpong_anchors():
    net = infiniband_40g()
    assert net.pingpong_oneway_time(1) == pytest.approx(1 / 0.57e6, rel=1e-6)
    assert net.pingpong_oneway_time(1 * KiB) == pytest.approx(
        1024 / 272.84e6, rel=1e-6
    )
    # §V-B: 3023 MB/s at 2 MB.
    assert net.pingpong_oneway_time(2 * MiB) == pytest.approx(
        2 * MiB / 3023e6, rel=1e-6
    )


def test_infiniband_far_faster_than_ethernet_for_large():
    eth, ib = ethernet_10g(), infiniband_40g()
    ratio = eth.pingpong_oneway_time(2 * MiB) / ib.pingpong_oneway_time(2 * MiB)
    assert ratio == pytest.approx(3023 / 1038, rel=1e-3)


def test_paper_identity_ethernet_2mb_overhead():
    """§V-A: BoringSSL enc-dec at 2 MB is ~1.32x baseline bandwidth, so
    encrypted ping-pong should be ~1.76x slower (78.3% overhead)."""
    net = ethernet_10g()
    prof = get_profile("boringssl", "gcc")
    base = net.pingpong_oneway_time(2 * MiB)
    enc = base + prof.encdec_time(2 * MiB)
    overhead = (enc - base) / base
    assert overhead == pytest.approx(0.783, abs=0.08)


def test_paper_identity_infiniband_2mb_overhead():
    """§V-B: 46% bandwidth ratio => ~3.17x slower (215.2% overhead)."""
    net = infiniband_40g()
    prof = get_profile("boringssl", "mvapich")
    base = net.pingpong_oneway_time(2 * MiB)
    enc = base + prof.encdec_time(2 * MiB)
    overhead = (enc - base) / base
    assert overhead == pytest.approx(2.152, abs=0.15)


def test_paper_identity_ethernet_256b_libsodium():
    """§V-A: Libsodium has just ~5.89% overhead at 256 B on Ethernet."""
    net = ethernet_10g()
    prof = get_profile("libsodium", "gcc")
    base = net.pingpong_oneway_time(256)
    overhead = prof.encdec_time(256) / base
    assert overhead == pytest.approx(0.0589, abs=0.03)


def test_paper_identity_infiniband_256b_boringssl():
    """§V-B: BoringSSL has ~80.93% overhead at 256 B on InfiniBand."""
    net = infiniband_40g()
    prof = get_profile("boringssl", "mvapich")
    base = net.pingpong_oneway_time(256)
    overhead = prof.encdec_time(256) / base
    assert overhead == pytest.approx(0.809, abs=0.25)


def test_proto_delay_nonnegative_everywhere():
    for net in (ethernet_10g(), infiniband_40g()):
        for size in (1, 16, 256, 1 * KiB, 16 * KiB, 64 * KiB, 1 * MiB, 2 * MiB, 4 * MiB):
            assert net.proto_delay(size) >= 0.0, (net.name, size)


def test_decomposition_reconstructs_pingpong_time():
    """o_send + L + proto + s/B_stream + o_recv (+rendezvous) must equal
    the calibrated one-way time at every anchor size."""
    for net in (ethernet_10g(), infiniband_40g()):
        for size in (1, 256, 1 * KiB, 16 * KiB, 256 * KiB, 2 * MiB):
            t = (
                net.send_overhead(size)
                + net.nic_service_time(1)
                + net.latency
                + net.proto_delay(size)
                + max(size, 1) / net.stream_bandwidth(size)
                + net.recv_overhead(size)
            )
            if size > net.eager_threshold:
                t += net.rendezvous_handshake()
            assert t == pytest.approx(net.pingpong_oneway_time(size), rel=1e-6), (
                net.name,
                size,
            )


def test_stream_beats_pingpong_bandwidth_mid_sizes():
    """Pipelining pays: per-stream bandwidth exceeds solitary-message
    effective bandwidth at mid sizes (why multi-pair saturates early)."""
    for net in (ethernet_10g(), infiniband_40g()):
        for size in (1 * KiB, 16 * KiB):
            solitary = size / net.pingpong_oneway_time(size)
            assert net.stream_bandwidth(size) > solitary


def test_eager_thresholds():
    assert ethernet_10g().is_eager(64 * KiB)
    assert not ethernet_10g().is_eager(64 * KiB + 1)
    assert infiniband_40g().is_eager(8 * KiB)
    assert not infiniband_40g().is_eager(8 * KiB + 1)


def test_nic_contention_only_on_infiniband():
    eth, ib = ethernet_10g(), infiniband_40g()
    assert eth.nic_service_time(8) == eth.nic_service_time(1)
    assert ib.nic_service_time(8) > ib.nic_service_time(4) == ib.nic_service_time(1)


def test_shm_path_much_faster_than_network():
    for net in (ethernet_10g(), infiniband_40g()):
        assert net.shm_oneway_time(16 * KiB) < net.pingpong_oneway_time(16 * KiB)
