"""The FabricSpec facade: parse/token round-trips, shared error
messages, and seeded noise determinism."""

import pytest

from repro.models.network import (
    FABRIC_PRESETS,
    FabricSpec,
    NoiseModel,
    canonical_fabric,
    get_network,
    parse_network_spec,
    resolve_network,
)
from repro.simmpi.faults import FaultPlan


def test_parse_round_trips_through_token():
    for spec_str in (
        "ethernet",
        "wan",
        "iot:loss=5%",
        "wan:jitter=10%,loss=2%,seed=7",
        "infiniband:jitter=3%,wobble=1%,loss=4%,seed=-2",
        "ethernet:wobble=0.125",
    ):
        spec = parse_network_spec(spec_str)
        assert parse_network_spec(spec.token()) == spec


def test_token_is_canonical():
    # aliases, option order, and spellings all collapse to one token
    assert parse_network_spec("eth").token() == "ethernet"
    assert parse_network_spec("10g:seed=3,jitter=0.1").token() == \
        "ethernet:jitter=10%,seed=3"
    assert FabricSpec(base="ib", loss=0.02).token() == "infiniband:loss=2%"
    # zero knobs are omitted; an all-zero spec tokens to the bare name
    # (historical cache keys and memo keys survive the facade)
    assert FabricSpec(base="wan", jitter=0.0, seed=0).token() == "wan"


def test_parse_accepts_spec_passthrough():
    spec = FabricSpec(base="wan", jitter=0.1)
    assert parse_network_spec(spec) is spec


def test_unknown_base_raises_keyerror_naming_presets():
    for call in (
        lambda: get_network("carrier-pigeon"),
        lambda: canonical_fabric("carrier-pigeon"),
        lambda: parse_network_spec("carrier-pigeon:loss=1%"),
        lambda: FabricSpec(base="carrier-pigeon"),
    ):
        with pytest.raises(KeyError) as err:
            call()
        message = err.value.args[0]
        assert "carrier-pigeon" in message
        for preset in FABRIC_PRESETS:
            assert preset in message


def test_malformed_options_name_valid_keys():
    with pytest.raises(ValueError, match="jitter, wobble, loss, seed"):
        parse_network_spec("wan:latency=10%")
    with pytest.raises(ValueError, match="key=value"):
        parse_network_spec("wan:jitter")
    with pytest.raises(ValueError, match="duplicate"):
        parse_network_spec("wan:loss=1%,loss=2%")
    with pytest.raises(ValueError, match="integer"):
        parse_network_spec("wan:seed=many")
    with pytest.raises(ValueError, match="fraction"):
        parse_network_spec("wan:loss=lots")


def test_knob_validation():
    with pytest.raises(ValueError, match="jitter"):
        FabricSpec(base="wan", jitter=-0.1)
    with pytest.raises(ValueError, match="loss"):
        FabricSpec(base="wan", loss=1.0)
    with pytest.raises(ValueError, match="wobble"):
        FabricSpec(base="wan", wobble=1.5)
    with pytest.raises(ValueError, match="seed"):
        FabricSpec(base="wan", seed=1.5)


def test_wan_iot_presets_exist_and_are_hostile():
    eth = get_network("ethernet")
    wan = get_network("wan")
    iot = get_network("iot")
    assert wan.latency > eth.latency
    assert iot.latency > wan.latency
    assert iot.stream_bandwidth(64 * 1024) < wan.stream_bandwidth(64 * 1024)


def test_clean_spec_builds_the_shared_singleton():
    assert FabricSpec(base="ethernet").build() is get_network("ethernet")
    # loss alone does not perturb timing: still the clean model
    assert FabricSpec(base="wan", loss=0.02).build() is get_network("wan")


def test_noisy_spec_builds_fresh_noise_models():
    spec = FabricSpec(base="wan", jitter=0.1, seed=3)
    a, b = spec.build(), spec.build()
    assert isinstance(a, NoiseModel) and isinstance(b, NoiseModel)
    assert a is not b  # fresh RNG position per job
    assert a.base is b.base  # but one shared timing singleton
    assert a.name == spec.token()
    # delegation: timing lookups fall through to the base model
    assert a.latency == get_network("wan").latency


def test_loss_compiles_to_a_seeded_fault_plan():
    spec = FabricSpec(base="iot", loss=0.05, seed=11)
    assert spec.loss_plan() == FaultPlan(drop=0.05, seed=11)
    assert FabricSpec(base="iot").loss_plan() is None


def test_resolve_network_passthrough_for_model_instances():
    model = get_network("ethernet")
    spec, resolved = resolve_network(model)
    assert spec is None and resolved is model
    spec, resolved = resolve_network("wan:jitter=5%")
    assert spec == FabricSpec(base="wan", jitter=0.05)
    assert isinstance(resolved, NoiseModel)


def test_perturb_draws_are_seed_deterministic():
    spec = FabricSpec(base="wan", jitter=0.1, wobble=0.05, seed=9)
    a = [spec.build().perturb_delay(1e-3) for _ in range(5)]
    b = [spec.build().perturb_delay(1e-3) for _ in range(5)]
    # one draw from a fresh model per call: all equal, and non-trivial
    assert a == b
    assert all(d != 1e-3 for d in a)
    reseeded = FabricSpec(base="wan", jitter=0.1, wobble=0.05, seed=10)
    assert reseeded.build().perturb_delay(1e-3) != a[0]


def test_perturbed_delay_is_bounded_and_nonnegative():
    spec = FabricSpec(base="wan", jitter=0.2, wobble=0.1, seed=1)
    model = spec.build()
    base_latency = model.base.latency
    for _ in range(200):
        delay = model.perturb_delay(1e-3)
        assert delay >= 1e-3 * (1.0 - spec.wobble)
        assert delay <= 1e-3 * (1.0 + spec.wobble) + \
            base_latency * spec.jitter * 2.0
