"""Crypto library profile tests, including the paper's own consistency
identities (§V-A arithmetic)."""

import pytest

from repro.models.cryptolib import (
    COMPILERS,
    PROFILED_LIBRARIES,
    get_profile,
    profile_for_network,
)
from repro.util.units import KiB, MiB


def test_all_libraries_and_compilers_resolve():
    for lib in PROFILED_LIBRARIES:
        for compiler in COMPILERS:
            p = get_profile(lib, compiler)
            assert p.library == lib
            assert p.encdec_throughput(16 * KiB) > 0


def test_paper_anchor_boringssl():
    p = get_profile("boringssl", "gcc")
    # §V-A quotes 1332 MB/s @16KB and 1381 MB/s @2MB.
    assert p.encdec_throughput(16 * KiB) == pytest.approx(1332e6, rel=1e-6)
    assert p.encdec_throughput(2 * MiB) == pytest.approx(1381e6, rel=1e-6)


def test_paper_anchor_libsodium():
    p = get_profile("libsodium", "gcc")
    assert p.encdec_throughput(256) == pytest.approx(409.67e6, rel=1e-6)
    assert p.encdec_throughput(2 * MiB) == pytest.approx(583e6, rel=1e-6)


def test_paper_anchor_cryptopp():
    p = get_profile("cryptopp", "gcc")
    assert p.encdec_throughput(16 * KiB) == pytest.approx(568e6, rel=1e-6)
    assert p.encdec_throughput(2 * MiB) == pytest.approx(273e6, rel=1e-6)


def test_library_ranking_holds_everywhere():
    """The paper's headline: BoringSSL > Libsodium > CryptoPP at the
    benchmarked sizes 256B..2MB (gcc)."""
    b = get_profile("boringssl", "gcc")
    l = get_profile("libsodium", "gcc")
    c = get_profile("cryptopp", "gcc")
    for size in (256, 1 * KiB, 16 * KiB, 2 * MiB):
        assert b.encdec_throughput(size) > l.encdec_throughput(size)
        assert l.encdec_throughput(size) >= c.encdec_throughput(size) * 0.99


def test_openssl_tracks_boringssl():
    for size in (256, 16 * KiB, 2 * MiB):
        assert get_profile("openssl").encdec_throughput(size) == get_profile(
            "boringssl"
        ).encdec_throughput(size)


def test_mvapich_improves_cryptopp_above_64kb():
    """§V-B: MVAPICH compiler dramatically improves CryptoPP > 64 KB."""
    gcc = get_profile("cryptopp", "gcc")
    mv = get_profile("cryptopp", "mvapich")
    for size in (256 * KiB, 1 * MiB, 2 * MiB):
        assert mv.encdec_throughput(size) > gcc.encdec_throughput(size)
    # Below 64 KB the curves agree.
    for size in (256, 16 * KiB):
        assert mv.encdec_throughput(size) == pytest.approx(
            gcc.encdec_throughput(size)
        )


def test_bcast_identity_boringssl_4mb():
    """§V-A: BoringSSL spends ~4298 us on enc+dec of a 4 MB Bcast
    payload (and ~298x its 16 KB cost)."""
    p = get_profile("boringssl", "gcc")
    t_4mb = p.encdec_time(4 * MiB)
    assert t_4mb == pytest.approx(4298e-6, rel=0.05)
    t_16kb = p.encdec_time(16 * KiB)
    assert t_4mb / t_16kb == pytest.approx(298, rel=0.15)


def test_alltoall_identity_cryptopp_4mb():
    """§V-A: CryptoPP spends ~1,331,103 us encrypting/decrypting 63
    4 MB messages in Encrypted_Alltoall (~459x its 16 KB cost)."""
    p = get_profile("cryptopp", "gcc")
    total = 63 * p.encdec_time(4 * MiB)
    assert total == pytest.approx(1_331_103e-6, rel=0.05)


def test_encrypt_decrypt_symmetric():
    p = get_profile("boringssl")
    assert p.encrypt_time(1 * MiB) == p.decrypt_time(1 * MiB)
    assert p.encdec_time(1 * MiB) == 2 * p.encrypt_time(1 * MiB)


def test_framing_overhead_dominates_tiny_messages():
    """Table I: CryptoPP's 1 B ping-pong adds ~14.5 us one-way."""
    p = get_profile("cryptopp", "gcc")
    added = p.encdec_time(1)
    assert 10e-6 < added < 25e-6
    b = get_profile("boringssl", "gcc")
    assert 1e-6 < b.encdec_time(1) < 4e-6


def test_key128_faster_than_256():
    p256 = get_profile("boringssl", key_bits=256)
    p128 = get_profile("boringssl", key_bits=128)
    assert p128.encrypt_time(1 * MiB) < p256.encrypt_time(1 * MiB)


def test_libsodium_rejects_128():
    with pytest.raises(ValueError, match="only supports AES-GCM-256"):
        get_profile("libsodium", key_bits=128)


def test_zero_size_costs_only_framing():
    p = get_profile("boringssl")
    assert p.encrypt_time(0) == pytest.approx(p.framing_overhead)


def test_validation():
    with pytest.raises(ValueError):
        get_profile("rot13")
    with pytest.raises(ValueError):
        get_profile("boringssl", "icc")
    with pytest.raises(ValueError):
        get_profile("boringssl", key_bits=192)
    with pytest.raises(ValueError):
        get_profile("boringssl").encrypt_time(-1)


def test_profile_for_network_selects_compiler():
    assert profile_for_network("cryptopp", "infiniband").compiler == "mvapich"
    assert profile_for_network("cryptopp", "ethernet").compiler == "gcc"
