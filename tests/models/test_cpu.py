"""Cluster shape / rank placement tests."""

import pytest

from repro.models.cpu import PAPER_CLUSTER, TWO_NODE_CLUSTER, ClusterSpec


def test_paper_cluster_shape():
    assert PAPER_CLUSTER.nodes == 8
    assert PAPER_CLUSTER.cores_per_node == 8
    assert PAPER_CLUSTER.total_cores == 64


def test_block_placement_64_ranks():
    # 64 ranks / 8 nodes: ranks 0-7 on node 0, 8-15 on node 1, ...
    assert PAPER_CLUSTER.node_of(0, 64) == 0
    assert PAPER_CLUSTER.node_of(7, 64) == 0
    assert PAPER_CLUSTER.node_of(8, 64) == 1
    assert PAPER_CLUSTER.node_of(63, 64) == 7


def test_block_placement_16_ranks_8_nodes():
    # The paper's 16 rank/8 node setting: 2 ranks per node.
    nodes = [PAPER_CLUSTER.node_of(r, 16) for r in range(16)]
    assert nodes == [0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 7, 7]


def test_block_placement_4_ranks_8_nodes():
    # 4 rank/4 node setting (one rank per node on the first 4 nodes).
    nodes = [PAPER_CLUSTER.node_of(r, 4) for r in range(4)]
    assert nodes == [0, 1, 2, 3]


def test_block_placement_uneven():
    spec = ClusterSpec(nodes=3, cores_per_node=4)
    nodes = [spec.node_of(r, 7) for r in range(7)]
    # 7 ranks over 3 nodes: 3 + 2 + 2.
    assert nodes == [0, 0, 0, 1, 1, 2, 2]


def test_roundrobin_placement():
    nodes = [PAPER_CLUSTER.node_of(r, 16, "roundrobin") for r in range(16)]
    assert nodes == [r % 8 for r in range(16)]


def test_ranks_on_node():
    assert PAPER_CLUSTER.ranks_on_node(1, 64) == list(range(8, 16))
    assert TWO_NODE_CLUSTER.ranks_on_node(1, 2) == [1]


def test_oversubscription_rejected():
    with pytest.raises(ValueError, match="oversubscribe"):
        PAPER_CLUSTER.validate_ranks(65)


def test_validation():
    with pytest.raises(ValueError):
        ClusterSpec(nodes=0, cores_per_node=8)
    with pytest.raises(ValueError):
        PAPER_CLUSTER.node_of(64, 64)
    with pytest.raises(ValueError):
        PAPER_CLUSTER.node_of(0, 0)
    with pytest.raises(ValueError):
        PAPER_CLUSTER.node_of(0, 16, "random")
