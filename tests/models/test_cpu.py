"""Cluster shape / rank placement tests, plus the shared wave formula."""

import math

import pytest

from repro.models.cpu import (
    PAPER_CLUSTER,
    TWO_NODE_CLUSTER,
    ClusterSpec,
    parse_cluster_spec,
    pipeline_waves,
)


def test_paper_cluster_shape():
    assert PAPER_CLUSTER.nodes == 8
    assert PAPER_CLUSTER.cores_per_node == 8
    assert PAPER_CLUSTER.total_cores == 64


def test_block_placement_64_ranks():
    # 64 ranks / 8 nodes: ranks 0-7 on node 0, 8-15 on node 1, ...
    assert PAPER_CLUSTER.node_of(0, 64) == 0
    assert PAPER_CLUSTER.node_of(7, 64) == 0
    assert PAPER_CLUSTER.node_of(8, 64) == 1
    assert PAPER_CLUSTER.node_of(63, 64) == 7


def test_block_placement_16_ranks_8_nodes():
    # The paper's 16 rank/8 node setting: 2 ranks per node.
    nodes = [PAPER_CLUSTER.node_of(r, 16) for r in range(16)]
    assert nodes == [0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 7, 7]


def test_block_placement_4_ranks_8_nodes():
    # 4 rank/4 node setting (one rank per node on the first 4 nodes).
    nodes = [PAPER_CLUSTER.node_of(r, 4) for r in range(4)]
    assert nodes == [0, 1, 2, 3]


def test_block_placement_uneven():
    spec = ClusterSpec(nodes=3, cores_per_node=4)
    nodes = [spec.node_of(r, 7) for r in range(7)]
    # 7 ranks over 3 nodes: 3 + 2 + 2.
    assert nodes == [0, 0, 0, 1, 1, 2, 2]


def test_roundrobin_placement():
    nodes = [PAPER_CLUSTER.node_of(r, 16, "roundrobin") for r in range(16)]
    assert nodes == [r % 8 for r in range(16)]


def test_ranks_on_node():
    assert PAPER_CLUSTER.ranks_on_node(1, 64) == list(range(8, 16))
    assert TWO_NODE_CLUSTER.ranks_on_node(1, 2) == [1]


def test_oversubscription_rejected():
    with pytest.raises(ValueError, match="oversubscribe"):
        PAPER_CLUSTER.validate_ranks(65)


def test_validation():
    with pytest.raises(ValueError):
        ClusterSpec(nodes=0, cores_per_node=8)
    with pytest.raises(ValueError):
        PAPER_CLUSTER.node_of(64, 64)
    with pytest.raises(ValueError):
        PAPER_CLUSTER.node_of(0, 0)
    with pytest.raises(ValueError):
        PAPER_CLUSTER.node_of(0, 16, "random")


def test_pipeline_waves_values():
    assert pipeline_waves(1, 4) == 1
    assert pipeline_waves(4, 4) == 1
    assert pipeline_waves(5, 4) == 2
    assert pipeline_waves(16, 7) == 3
    assert pipeline_waves(9, 1) == 9


def test_pipeline_waves_rejects_bad_args():
    with pytest.raises(ValueError):
        pipeline_waves(0, 4)
    with pytest.raises(ValueError):
        pipeline_waves(4, 0)


def test_wave_formula_shared():
    # The pipeline planner (repro.encmpi.pipeline.plan_pipeline) and the
    # analytical predictor (repro.models.predict) both schedule chunk
    # seals through pipeline_waves; this pins that they cannot drift
    # apart: the planner's wave count equals the shared formula for
    # every geometry it pipelines, and degenerates to one wave exactly
    # when it refuses to pipeline (one core, or nothing to chunk).
    from repro.encmpi.pipeline import plan_pipeline
    from repro.models.cryptolib import get_profile

    profile = get_profile("boringssl")
    kib = 1024
    for size in (4 * kib, 64 * kib, 100 * kib, 256 * kib, 1024 * kib,
                 1024 * kib + 1, 4096 * kib):
        for cores in (1, 2, 3, 7, 8):
            for chunk in (64 * kib, 128 * kib, 256 * kib):
                plan = plan_pipeline(profile, size, cores, chunk_bytes=chunk)
                if size > chunk and cores > 1:
                    nchunks = math.ceil(size / chunk)
                    assert plan.nchunks == nchunks
                    assert plan.waves == pipeline_waves(nchunks, cores)
                else:
                    assert plan.waves == 1


# ------------------------------------------------------- parse_cluster_spec

def test_parse_cluster_spec_round_trips_with_token():
    for spec in ("8x8", "2x8:ib", "1024x8", "4x2:ethernet"):
        cluster = parse_cluster_spec(spec)
        assert cluster.token() == spec
        assert parse_cluster_spec(cluster.token()) == cluster


def test_parse_cluster_spec_matches_the_named_constants():
    assert parse_cluster_spec("8x8") == PAPER_CLUSTER
    assert parse_cluster_spec("2x8") == TWO_NODE_CLUSTER


def test_parse_cluster_spec_fabric_is_carried_not_parsed():
    cluster = parse_cluster_spec("2x8:ib")
    assert (cluster.nodes, cluster.cores_per_node, cluster.fabric) == (2, 8, "ib")
    # fabric-free spec leaves the field None (token has no colon)
    assert parse_cluster_spec("2x8").fabric is None


@pytest.mark.parametrize("bad", ["8", "x8", "8x", "ax8", "8xb", "8*8", ""])
def test_parse_cluster_spec_rejects_malformed(bad):
    with pytest.raises(ValueError, match="NODESxCORES|integer"):
        parse_cluster_spec(bad)


def test_parse_cluster_spec_rejects_bad_shapes():
    with pytest.raises(ValueError):
        parse_cluster_spec("0x8")
    with pytest.raises(ValueError):
        parse_cluster_spec("8x0")


def test_cluster_token_used_by_campaign_digest():
    """The campaign digests cluster shapes through token(): fabric (or
    any shape change) must flip the digest; an equal spec must not."""
    from dataclasses import replace

    from repro.experiments.campaign import experiment_config_digest
    from repro.experiments.registry import get_experiment

    exp = get_experiment("cryptmpi")
    assert exp.cluster is not None
    base = experiment_config_digest(exp)
    assert experiment_config_digest(exp) == base
    retagged = replace(exp, cluster=parse_cluster_spec("2x8:ib"))
    assert experiment_config_digest(retagged) != base
