"""Log-log interpolation tests."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models.interp import LogLogCurve


def test_exact_anchor_values():
    curve = LogLogCurve({1: 10.0, 100: 1000.0})
    assert curve(1) == pytest.approx(10.0)
    assert curve(100) == pytest.approx(1000.0)


def test_power_law_interpolation():
    # y = x^2 through (1,1) and (100,10000): log-log linear.
    curve = LogLogCurve({1: 1.0, 10000: 1e8})
    assert curve(10) == pytest.approx(100.0, rel=1e-9)
    assert curve(100) == pytest.approx(10000.0, rel=1e-9)


def test_clamping_outside_range():
    curve = LogLogCurve({10: 5.0, 100: 50.0})
    assert curve(1) == 5.0
    assert curve(1e9) == 50.0


def test_single_point_curve_is_constant():
    curve = LogLogCurve({7: 3.0})
    assert curve(1) == curve(7) == curve(100) == 3.0


def test_sequence_input():
    curve = LogLogCurve([(1, 1.0), (10, 10.0)])
    assert curve(3) == pytest.approx(3.0, rel=1e-9)


def test_validation():
    with pytest.raises(ValueError):
        LogLogCurve({})
    with pytest.raises(ValueError):
        LogLogCurve({0: 1.0})
    with pytest.raises(ValueError):
        LogLogCurve({1: 0.0})
    with pytest.raises(ValueError):
        LogLogCurve([(1, 1.0), (1, 2.0)])
    with pytest.raises(ValueError):
        LogLogCurve({1: 1.0})(0)


def test_anchors_property():
    curve = LogLogCurve({10: 1.0, 1: 2.0})
    assert curve.anchors == [(1, 2.0), (10, 1.0)]


@settings(max_examples=100)
@given(
    anchors=st.dictionaries(
        st.integers(1, 10**7),
        st.floats(1e-3, 1e9),
        min_size=2,
        max_size=8,
    ),
    x=st.floats(0.5, 2e7),
)
def test_interpolation_stays_within_bracket(anchors, x):
    """Monotone-bracket property: interpolated values never leave the
    range of the two neighbouring anchors."""
    curve = LogLogCurve(anchors)
    xs = sorted(anchors)
    y = curve(x)
    assert math.isfinite(y) and y > 0
    if x <= xs[0]:
        assert y == anchors[xs[0]]
    elif x >= xs[-1]:
        assert y == anchors[xs[-1]]
    else:
        import bisect

        i = bisect.bisect_left(xs, x)
        lo_y, hi_y = anchors[xs[i - 1]], anchors[xs[min(i, len(xs) - 1)]]
        lo, hi = min(lo_y, hi_y), max(lo_y, hi_y)
        assert lo * (1 - 1e-9) <= y <= hi * (1 + 1e-9)
