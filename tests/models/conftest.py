"""Shared fixtures for the model tests.

Calibrating the prediction engine simulates ~200 anchor cells (a few
seconds cold, instant once ``results/cache`` is warm), so the fitted
model is built once per test session and shared by every test that
only *reads* it.
"""

import pytest


@pytest.fixture(scope="session")
def prediction_model():
    from repro.models.predict import calibrate

    return calibrate(cache_dir="results/cache")
