"""Unit tests of the prediction engine's fit primitives, plus the
calibration round-trip: fitting twice from the same anchors must give a
byte-identical model, pinned against a committed golden digest."""

import json
import math
from pathlib import Path

import pytest

from repro.models.predict import (
    GOLDEN_FIXTURE,
    PairShareCurve,
    PiecewiseAffine,
    Segment,
    _affine,
    anchor_cells,
    calibrate,
    fit_monotone,
)

REPO = Path(__file__).resolve().parents[2]


# ---------------------------------------------------------------- _affine

def test_affine_exact_line():
    a, b = _affine([(0.0, 1.0), (2.0, 5.0)])
    assert a == pytest.approx(1.0)
    assert b == pytest.approx(2.0)


def test_affine_single_point_is_flat():
    assert _affine([(8.0, 3.0)]) == (3.0, 0.0)


def test_affine_negative_slope_clamped():
    # A decreasing point cloud must not fit a decreasing cost curve.
    a, b = _affine([(1.0, 5.0), (2.0, 3.0), (3.0, 1.0)])
    assert b == 0.0
    assert a == pytest.approx(3.0)  # falls back to the mean


# --------------------------------------------------------- PiecewiseAffine

def test_piecewise_needs_a_segment():
    with pytest.raises(ValueError):
        PiecewiseAffine(())


def test_piecewise_rejects_negative_size():
    curve = PiecewiseAffine((Segment(hi=math.inf, a=1.0, b=0.0),))
    with pytest.raises(ValueError):
        curve(-1)


def test_piecewise_floors_enforce_monotonicity():
    # The second segment would dip below the first at its left edge;
    # the running-max floor must hold the curve at the boundary value.
    curve = PiecewiseAffine((
        Segment(hi=100.0, a=0.0, b=1.0),   # reaches 100 at the knee
        Segment(hi=math.inf, a=10.0, b=0.1),  # would answer 20 at 100
    ))
    assert curve(100.0) == pytest.approx(100.0)
    assert curve(150.0) == pytest.approx(100.0)  # still floored
    assert curve(1000.0) == pytest.approx(110.0)  # segment takes over


def test_fit_monotone_is_nondecreasing():
    pts = [(float(s), 1e-6 * s + 5e-5) for s in
           (256, 1024, 4096, 16384, 65536, 262144)]
    curve = fit_monotone(pts, knees=(1024.0, 16384.0))
    sizes = [2 ** k for k in range(6, 22)]
    values = [curve(s) for s in sizes]
    assert values == sorted(values)


def test_fit_monotone_rejects_empty():
    with pytest.raises(ValueError):
        fit_monotone([], knees=(1024.0,))


# ----------------------------------------------------------- PairShareCurve

def test_pair_share_must_start_at_one():
    with pytest.raises(ValueError):
        PairShareCurve(((2, 0.9),))


def test_pair_share_rejects_zero_pairs():
    curve = PairShareCurve(((1, 1.0), (4, 0.5)))
    with pytest.raises(ValueError):
        curve.share(0)


def test_pair_share_nonincreasing_and_capped():
    curve = PairShareCurve(((1, 1.0), (2, 0.8), (4, 0.5), (8, 0.25)))
    shares = [curve.share(p) for p in range(1, 17)]
    for lo, hi in zip(shares[1:], shares):
        assert lo <= hi + 1e-12
    # beyond the last anchor the aggregate is capped: p * f(p) constant
    assert 12 * curve.share(12) == pytest.approx(8 * 0.25)


# ------------------------------------------------------- chunk penalty interp

def test_chunk_penalty_interpolation(prediction_model):
    kib = 1024
    pts = prediction_model.cryptmpi_penalty["ethernet"]
    # at and below the reference chunk the surcharge vanishes
    assert prediction_model._chunk_penalty("ethernet", 64 * kib) == (0.0, 0.0)
    assert prediction_model._chunk_penalty("ethernet", 4 * kib) == (0.0, 0.0)
    # at a fitted point the surcharge is the fitted value
    c1, d0, d1 = pts[1]
    assert prediction_model._chunk_penalty("ethernet", c1) == \
        pytest.approx((d0, d1))
    # halfway between two fitted points it is the midpoint
    c0, a0, b0 = pts[0]
    mid = (c0 + c1) // 2
    got = prediction_model._chunk_penalty("ethernet", mid)
    w = (mid - c0) / (c1 - c0)
    assert got == pytest.approx((a0 + w * (d0 - a0), b0 + w * (d1 - b0)))
    # beyond the last point extrapolation never goes negative
    beyond = prediction_model._chunk_penalty("ethernet", 64 * 1024 * kib)
    assert beyond[0] >= 0.0 and beyond[1] >= 0.0


# --------------------------------------------------- calibration round-trip

def test_calibration_round_trip_byte_identical(prediction_model):
    # Re-fitting from the same anchor simulations must reproduce every
    # coefficient exactly — token() is the full repr-precision dump.
    again = calibrate(cache_dir="results/cache", force=True)
    assert again.token() == prediction_model.token()
    assert again.digest() == prediction_model.digest()


def test_model_digest_matches_golden_fixture(prediction_model):
    doc = json.loads((REPO / GOLDEN_FIXTURE).read_text())
    assert prediction_model.anchor_count == doc["anchor_cells"]
    assert prediction_model.digest() == doc["digest"]


def test_anchor_cells_are_deterministic():
    cells = anchor_cells()
    assert len(cells) == len(anchor_cells())
    assert [c.spec() for c in cells] == [c.spec() for c in anchor_cells()]
    # fit cells and holdouts are disjoint roles
    assert {c.role for c in cells} == {"fit", "holdout"}
