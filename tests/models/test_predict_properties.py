"""Physical-sanity properties of the prediction engine.

The fitted model must behave like the machine it summarizes, for every
profiled backend and sealing mode on both fabrics:

- one-way latency never decreases as the message grows;
- latency never decreases as the injected fault rate grows;
- on a shared NIC, per-pair goodput never increases as pairs are added.

``pairs == 1`` answers the solitary ping-pong benchmark and
``pairs >= 2`` the multipair streaming benchmark — two different
measurements with an expected jump between them — so the goodput
property is asserted over the streaming regime (2..8 pairs).
"""

import pytest

from repro.encmpi.plan import CryptoPlan
from repro.models.cryptolib import PROFILED_LIBRARIES
from repro.models.predict import CORES_PER_NODE, FABRICS
from repro.simmpi.faults import FaultPlan
from repro.simmpi.resilience import ResiliencePolicy

KIB = 1024
MIB = 1024 * KIB

#: every (library, plan) combination the engine models: the plaintext
#: baseline, serial sealing per library, and pipelined sealing per
#: library in two geometries
MODES = [(None, None)]
MODES += [(lib, CryptoPlan(library=lib)) for lib in PROFILED_LIBRARIES]
MODES += [(lib, CryptoPlan(library=lib, mode="cryptmpi",
                           chunk_bytes=64 * KIB))
          for lib in PROFILED_LIBRARIES]
MODES += [(lib, CryptoPlan(library=lib, mode="cryptmpi",
                           chunk_bytes=256 * KIB, helper_cores=2))
          for lib in PROFILED_LIBRARIES]

MODE_IDS = ["plain" if lib is None else f"{plan.mode}-{lib}-{plan.chunk_bytes}"
            for lib, plan in MODES]

#: a dense geometric size sweep crossing every fitted knee and both
#: pipeline chunk geometries
SIZES = [2 ** k for k in range(0, 23)] + [3 * KIB, 96 * KIB, 640 * KIB,
                                          3 * MIB]
SIZES.sort()

POLICY = ResiliencePolicy(max_retries=8, timeout=2e-4,
                          escalation="plain_fallback")


@pytest.mark.parametrize("fabric", FABRICS)
@pytest.mark.parametrize("lib,plan", MODES, ids=MODE_IDS)
def test_latency_nondecreasing_in_size(prediction_model, fabric, lib, plan):
    latencies = [
        prediction_model.predict(library=lib, fabric=fabric, size=s,
                                 plan=plan).latency
        for s in SIZES
    ]
    for s_prev, s_next, lo, hi in zip(SIZES, SIZES[1:], latencies,
                                      latencies[1:]):
        assert hi >= lo * (1.0 - 1e-12), (
            f"latency dropped from {lo} to {hi} between {s_prev} and "
            f"{s_next} bytes"
        )


@pytest.mark.parametrize("fabric", FABRICS)
@pytest.mark.parametrize("lib,plan", MODES, ids=MODE_IDS)
def test_latency_nondecreasing_in_fault_rate(prediction_model, fabric, lib,
                                             plan):
    rates = (0.0, 0.02, 0.06, 0.12, 0.2, 0.3)
    for size in (4 * KIB, 512 * KIB):
        latencies = []
        for rate in rates:
            faults = FaultPlan(drop=rate) if rate else None
            resilience = POLICY if rate else None
            latencies.append(
                prediction_model.predict(
                    library=lib, fabric=fabric, size=size, plan=plan,
                    faults=faults, resilience=resilience,
                ).latency
            )
        for lo, hi in zip(latencies, latencies[1:]):
            assert hi >= lo * (1.0 - 1e-12)


@pytest.mark.parametrize("fabric", FABRICS)
@pytest.mark.parametrize("lib", (None,) + PROFILED_LIBRARIES,
                         ids=["plain"] + list(PROFILED_LIBRARIES))
def test_per_pair_goodput_nonincreasing_in_pairs(prediction_model, fabric,
                                                 lib):
    # Max-min-fair sharing of one NIC: adding pairs can only dilute
    # each pair's slice (aggregate may still grow until saturation).
    for size in (16 * KIB, 64 * KIB, 2 * MIB):
        per_pair = [
            prediction_model.predict(library=lib, fabric=fabric, size=size,
                                     pairs=p).per_pair_goodput
            for p in range(2, CORES_PER_NODE + 1)
        ]
        for lo, hi in zip(per_pair[1:], per_pair):
            assert lo <= hi * (1.0 + 1e-12)


def test_every_prediction_carries_confidence(prediction_model):
    for fabric in FABRICS:
        for lib, plan in MODES:
            pred = prediction_model.predict(library=lib, fabric=fabric,
                                            size=MIB, plan=plan)
            assert 0.0 < pred.confidence <= 0.95
            lo, hi = pred.latency_bounds
            assert lo <= pred.latency <= hi


def test_predict_rejects_bad_queries(prediction_model):
    with pytest.raises(ValueError, match="profiled"):
        prediction_model.predict(library="rustls")
    with pytest.raises(ValueError, match="pairs"):
        prediction_model.predict(pairs=CORES_PER_NODE + 1)
    with pytest.raises(ValueError, match="size"):
        prediction_model.predict(size=0)
    with pytest.raises(ValueError, match="needs a library"):
        prediction_model.predict(plan=CryptoPlan(mode="cryptmpi"))
    with pytest.raises(ValueError, match="resilience"):
        prediction_model.predict(library="openssl",
                                 faults=FaultPlan(drop=0.1))
