"""OSU collective latency workload tests (scaled-down cluster for speed)."""

import pytest

from repro.models.cpu import ClusterSpec
from repro.util.units import KiB
from repro.workloads.osu_collectives import collective_latency

SMALL = ClusterSpec(nodes=4, cores_per_node=4)


def test_bcast_latency_positive_and_ordered_by_library():
    base = collective_latency("bcast", 16 * KiB, nranks=16, cluster=SMALL, iters=1)
    boring = collective_latency(
        "bcast", 16 * KiB, nranks=16, cluster=SMALL, library="boringssl", iters=1
    )
    cpp = collective_latency(
        "bcast", 16 * KiB, nranks=16, cluster=SMALL, library="cryptopp", iters=1
    )
    assert 0 < base < boring < cpp


def test_alltoall_latency_ordered_by_library():
    base = collective_latency("alltoall", 4 * KiB, nranks=16, cluster=SMALL, iters=1)
    boring = collective_latency(
        "alltoall", 4 * KiB, nranks=16, cluster=SMALL, library="boringssl", iters=1
    )
    sodium = collective_latency(
        "alltoall", 4 * KiB, nranks=16, cluster=SMALL, library="libsodium", iters=1
    )
    assert base < boring < sodium


def test_alltoall_more_expensive_than_bcast():
    """Tables II vs III: alltoall moves p x the bytes of bcast (at the
    paper's 64-rank scale the ratio is ~28x; at this 16-rank test scale
    it is ~2x — the direction is what matters here)."""
    b = collective_latency("bcast", 16 * KiB, nranks=16, cluster=SMALL, iters=1)
    a = collective_latency("alltoall", 16 * KiB, nranks=16, cluster=SMALL, iters=1)
    assert a > 1.8 * b


def test_infiniband_faster_than_ethernet():
    eth = collective_latency("bcast", 16 * KiB, nranks=16, cluster=SMALL,
                             network="ethernet", iters=1)
    ib = collective_latency("bcast", 16 * KiB, nranks=16, cluster=SMALL,
                            network="infiniband", iters=1)
    assert ib < eth


def test_allgather_and_alltoallv_ops():
    """The remaining §IV encrypted collectives run and cost more
    encrypted than not."""
    for op in ("allgather", "alltoallv"):
        base = collective_latency(op, 4 * KiB, nranks=8, cluster=SMALL, iters=1)
        enc = collective_latency(
            op, 4 * KiB, nranks=8, cluster=SMALL, library="cryptopp", iters=1
        )
        assert 0 < base < enc, op


def test_validation():
    with pytest.raises(ValueError):
        collective_latency("reduce_scatter", 16)
    with pytest.raises(ValueError):
        collective_latency("bcast", 0)
