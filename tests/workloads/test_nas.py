"""NAS proxy tests (scaled-down clusters for speed; the full 64-rank
paper-scale runs live in benchmarks/)."""

import pytest

from repro.models.cpu import ClusterSpec
from repro.workloads.nas import NAS_BENCHMARKS, get_benchmark, run_nas
from repro.workloads.nas.common import PAPER_BASELINE_SECONDS
from repro.workloads.nas.topology_utils import (
    coords2d,
    coords3d,
    grid2d,
    grid3d,
    rank2d,
    rank3d,
)

SMALL = ClusterSpec(nodes=2, cores_per_node=4)


def test_all_benchmarks_registered():
    # The paper's seven plus EP (which the paper omits for having ~no
    # communication; we include it to complete the suite).
    assert NAS_BENCHMARKS() == ["bt", "cg", "ep", "ft", "is", "lu", "mg", "sp"]


def test_get_benchmark_validates():
    assert get_benchmark("CG").name == "cg"
    with pytest.raises(ValueError):
        get_benchmark("dc")  # NPB3 data-cube is out of scope


def test_paper_baselines_cover_the_reported_suite():
    reported = set(NAS_BENCHMARKS()) - {"ep"}
    for net in ("ethernet", "infiniband"):
        assert set(PAPER_BASELINE_SECONDS[net]) == reported


def test_ep_has_negligible_encryption_overhead():
    """The reason the paper omits EP, demonstrated."""
    base = run_nas("ep", nranks=8, cluster=SMALL)
    enc = run_nas("ep", nranks=8, cluster=SMALL, library="cryptopp")
    assert enc.total_seconds - base.total_seconds < 1e-3  # < 1 ms


@pytest.mark.parametrize("name", ["cg", "ft", "is", "mg", "lu", "bt", "sp"])
def test_skeletons_run_at_small_scale(name):
    res = run_nas(name, nranks=8, cluster=SMALL)
    assert res.total_seconds > 0
    assert res.comm_seconds > 0
    assert res.iterations == get_benchmark(name).iterations


@pytest.mark.parametrize("name", ["cg", "ft"])
def test_encrypted_slower_than_baseline_small_scale(name):
    base = run_nas(name, nranks=8, cluster=SMALL)
    enc = run_nas(name, nranks=8, cluster=SMALL, library="cryptopp")
    assert enc.total_seconds > base.total_seconds


@pytest.mark.slow
def test_library_ranking_small_scale():
    times = {
        lib: run_nas("ft", nranks=8, cluster=SMALL, library=lib).total_seconds
        for lib in ("boringssl", "libsodium", "cryptopp")
    }
    assert times["boringssl"] < times["libsodium"] < times["cryptopp"]


def test_payload_kinds():
    assert get_benchmark("cg").payload_kind == "contiguous"
    assert get_benchmark("bt").payload_kind == "strided"
    assert get_benchmark("bt").crypto_slowdown() > get_benchmark("cg").crypto_slowdown()


def test_grid_helpers():
    assert grid2d(64) == (8, 8)
    assert grid2d(16) == (4, 4)
    assert grid2d(8) == (2, 4)
    assert grid3d(64) == (4, 4, 4)
    assert grid3d(8) == (2, 2, 2)
    r, c = grid2d(12)
    assert r * c == 12
    with pytest.raises(ValueError):
        grid2d(0)
    with pytest.raises(ValueError):
        grid3d(0)


def test_coords_roundtrip():
    for rank in range(24):
        i, j = coords2d(rank, 4, 6)
        assert rank2d(i, j, 4, 6) == rank
    for rank in range(24):
        x, y, z = coords3d(rank, 2, 3, 4)
        assert rank3d(x, y, z, 2, 3, 4) == rank


def test_rank_wrapping():
    assert rank2d(-1, 0, 4, 6) == rank2d(3, 0, 4, 6)
    assert rank3d(2, 0, 0, 2, 3, 4) == rank3d(0, 0, 0, 2, 3, 4)
