"""Encryption-decryption microbenchmark tests."""

import pytest

from repro.util.units import KiB, MiB
from repro.workloads.encdec import measured_encdec_curve, modeled_encdec_curve


def test_modeled_curve_hits_paper_anchors():
    curve = modeled_encdec_curve("boringssl", "gcc")
    # Framing costs make the *benchmark* value sit just below the bulk
    # curve anchors; within 2%.
    assert curve[2 * MiB] / 1e6 == pytest.approx(1381, rel=0.02)
    assert curve[16 * KiB] / 1e6 == pytest.approx(1332, rel=0.2)


def test_modeled_curves_preserve_library_ranking():
    b = modeled_encdec_curve("boringssl")
    l = modeled_encdec_curve("libsodium")
    c = modeled_encdec_curve("cryptopp")
    for size in (256, 16 * KiB, 2 * MiB):
        assert b[size] > l[size] >= c[size]


def test_modeled_curve_rises_then_saturates():
    curve = modeled_encdec_curve("boringssl")
    assert curve[16] < curve[16 * KiB]
    assert curve[16 * KiB] == pytest.approx(curve[256 * KiB], rel=0.2)


def test_measured_curve_runs_on_this_host():
    """A quick real AES-GCM measurement: just three sizes, sanity only."""
    results = measured_encdec_curve(
        sizes=(256, 16 * KiB), target_seconds=0.005, min_iters=2
    )
    assert set(results) == {256, 16 * KiB}
    for stats in results.values():
        assert stats.mean > 1e6  # >1 MB/s enc+dec on any modern CPU
        assert stats.n >= 5
    # Throughput grows with size (per-call overhead amortizes).
    assert results[16 * KiB].mean > results[256].mean
