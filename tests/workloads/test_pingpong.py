"""Ping-pong workload tests against the paper's Tables I/V anchors."""

import pytest

from repro.util.units import KiB, MiB
from repro.workloads.pingpong import pingpong_oneway_time, pingpong_throughput


def test_baseline_matches_table1_anchors():
    for size, mbps in ((1, 0.050), (16, 0.83), (256, 7.01), (1 * KiB, 17.03)):
        got = pingpong_throughput(size, network="ethernet") / 1e6
        assert got == pytest.approx(mbps, rel=0.02), size


def test_baseline_matches_table5_anchors():
    for size, mbps in ((1, 0.57), (256, 82.34), (1 * KiB, 272.84)):
        got = pingpong_throughput(size, network="infiniband") / 1e6
        assert got == pytest.approx(mbps, rel=0.02), size


def test_encrypted_2mb_overhead_ethernet():
    """§V-A headline: BoringSSL 78.3% at 2 MB on Ethernet."""
    base = pingpong_oneway_time(2 * MiB, network="ethernet")
    enc = pingpong_oneway_time(2 * MiB, network="ethernet", library="boringssl")
    overhead = (enc - base) / base * 100
    assert overhead == pytest.approx(78.3, abs=8)


def test_encrypted_2mb_overhead_infiniband():
    """§V-B headline: BoringSSL 215.2% at 2 MB on InfiniBand."""
    base = pingpong_oneway_time(2 * MiB, network="infiniband")
    enc = pingpong_oneway_time(2 * MiB, network="infiniband", library="boringssl")
    overhead = (enc - base) / base * 100
    assert overhead == pytest.approx(215.2, abs=20)


def test_small_messages_have_small_overhead_on_ethernet():
    """§V-A: ~6% overhead at 256 B for the fast libraries on Ethernet."""
    base = pingpong_oneway_time(256, network="ethernet")
    enc = pingpong_oneway_time(256, network="ethernet", library="libsodium")
    overhead = (enc - base) / base * 100
    assert overhead < 15


def test_library_ranking_at_2mb():
    ts = {
        lib: pingpong_throughput(2 * MiB, network="ethernet", library=lib)
        for lib in ("boringssl", "libsodium", "cryptopp")
    }
    assert ts["boringssl"] > ts["libsodium"] > ts["cryptopp"]


def test_key128_at_least_as_fast_as_256():
    t256 = pingpong_oneway_time(1 * MiB, library="boringssl", key_bits=256)
    t128 = pingpong_oneway_time(1 * MiB, library="boringssl", key_bits=128)
    assert t128 <= t256


def test_validation():
    with pytest.raises(ValueError):
        pingpong_oneway_time(-1)
    with pytest.raises(ValueError):
        pingpong_oneway_time(16, iters=0)
