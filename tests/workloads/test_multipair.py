"""Multi-pair workload tests against the paper's Figs. 4-6 / 11-13 shapes."""

import pytest

from repro.util.units import KiB, MiB
from repro.workloads.multipair import multipair_aggregate_throughput


def test_small_messages_scale_linearly_with_pairs():
    """Fig. 4 shape: baseline 1B throughput keeps increasing with pairs."""
    t1 = multipair_aggregate_throughput(1, 1, network="ethernet")
    t4 = multipair_aggregate_throughput(1, 4, network="ethernet")
    assert t4 > 3.0 * t1


def test_medium_messages_saturate_early():
    """Fig. 5 shape: baseline 16KB throughput saturates by ~2 pairs."""
    t2 = multipair_aggregate_throughput(16 * KiB, 2, network="ethernet")
    t8 = multipair_aggregate_throughput(16 * KiB, 8, network="ethernet")
    assert t8 < 1.25 * t2  # nearly flat past 2 pairs


@pytest.mark.slow
def test_encrypted_catches_up_with_pairs_16kb():
    """§V-A: at 8 pairs even CryptoPP reaches the baseline for 16KB."""
    base = multipair_aggregate_throughput(16 * KiB, 8, network="ethernet")
    cpp = multipair_aggregate_throughput(
        16 * KiB, 8, network="ethernet", library="cryptopp"
    )
    assert cpp > 0.90 * base


def test_single_pair_large_is_crypto_bound():
    """§V-A: with one pair, CryptoPP cannot keep up with the 2MB stream
    (its single-thread enc rate ~546 MB/s caps the flow)."""
    base = multipair_aggregate_throughput(2 * MiB, 1, network="ethernet")
    cpp = multipair_aggregate_throughput(
        2 * MiB, 1, network="ethernet", library="cryptopp"
    )
    assert cpp < 0.6 * base


@pytest.mark.slow
def test_infiniband_16kb_gap_remains_at_8_pairs():
    """§V-B: on IB, BoringSSL reaches only ~82% of baseline at 8 pairs
    for 16KB messages (the fabric outruns 8 crypto cores)."""
    base = multipair_aggregate_throughput(16 * KiB, 8, network="infiniband")
    boring = multipair_aggregate_throughput(
        16 * KiB, 8, network="infiniband", library="boringssl"
    )
    assert 0.6 * base < boring < 0.97 * base


def test_infiniband_small_message_contention_drop():
    """Fig. 11: IB baseline 1B aggregate drops (or stalls) from 4 to 8
    pairs due to NIC contention."""
    t4 = multipair_aggregate_throughput(1, 4, network="infiniband")
    t8 = multipair_aggregate_throughput(1, 8, network="infiniband")
    assert t8 < 1.35 * t4  # far from the 2x of contention-free scaling


def test_validation():
    with pytest.raises(ValueError):
        multipair_aggregate_throughput(1, 0)
    with pytest.raises(ValueError):
        multipair_aggregate_throughput(1, 9)
    with pytest.raises(ValueError):
        multipair_aggregate_throughput(0, 1)
