"""Every example script must run clean (the NAS campaign is exercised
by the benchmark suite instead — it takes minutes)."""

import importlib.util
import os
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "examples")

FAST_EXAMPLES = [
    "quickstart.py",
    "attack_demos.py",
    "key_exchange_demo.py",
    "pipelined_encryption.py",
    "heat_stencil.py",
    "campaign_demo.py",
    pytest.param("comm_characterization.py", marks=pytest.mark.slow),
]


def _load(name):
    path = os.path.join(EXAMPLES_DIR, name)
    spec = importlib.util.spec_from_file_location(name[:-3], path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script, capsys):
    module = _load(script)
    module.main()
    out = capsys.readouterr().out
    assert out.strip(), f"{script} printed nothing"
    assert "FAIL" not in out
    assert "!!!" not in out


def test_all_examples_have_main_and_docstring():
    for name in os.listdir(EXAMPLES_DIR):
        if not name.endswith(".py"):
            continue
        module = _load(name) if name in FAST_EXAMPLES else None
        path = os.path.join(EXAMPLES_DIR, name)
        source = open(path).read()
        assert '"""' in source.split("\n", 2)[-1] or source.startswith(
            ('"""', "#!/usr/bin/env python3")
        ), name
        assert "def main()" in source, name
        assert '__name__ == "__main__"' in source, name
