"""End-to-end integration tests: the paper's own arithmetic identities
must hold through the full simulator stack (not just the models)."""

import pytest

from repro.encmpi import EncryptedComm, SecurityConfig
from repro.models.cpu import ClusterSpec
from repro.simmpi import run_program
from repro.util.units import KiB, MiB
from repro.workloads.osu_collectives import collective_latency
from repro.workloads.pingpong import pingpong_oneway_time

SMALL = ClusterSpec(nodes=4, cores_per_node=4)


def test_section5a_bandwidth_ratio_estimate_ethernet():
    """§V-A derives the 2MB overhead from the ratio r of enc-dec
    throughput to baseline throughput as (1+r)/r; the full simulation
    must agree with that back-of-envelope within a few percent."""
    base = pingpong_oneway_time(2 * MiB, network="ethernet")
    enc = pingpong_oneway_time(2 * MiB, network="ethernet", library="boringssl")
    # r = 1381/1038 => slowdown (1+1.32)/1.32 ≈ 1.757
    assert enc / base == pytest.approx((1 + 1.32) / 1.32, rel=0.03)


def test_section5b_bandwidth_ratio_estimate_infiniband():
    base = pingpong_oneway_time(2 * MiB, network="infiniband")
    enc = pingpong_oneway_time(2 * MiB, network="infiniband", library="boringssl")
    # r = 1381/3023 ≈ 0.46 => slowdown (1+0.46)/0.46 ≈ 3.17
    assert enc / base == pytest.approx((1 + 0.46) / 0.46, rel=0.05)


def test_bcast_crypto_cost_bounded_by_one_encdec():
    """§V-A models Encrypted_Bcast as ordinary bcast + one enc (root)
    + one dec (each rank).  In the full simulation part of that cost
    hides in contention slack (the root's encryption staggers ranks'
    entry into the ring allgather, easing NIC sharing), so the measured
    delta is positive but bounded by the serial enc+dec cost."""
    from repro.models.cryptolib import get_profile

    size = 256 * KiB
    base = collective_latency("bcast", size, nranks=16, cluster=SMALL, iters=1)
    enc = collective_latency(
        "bcast", size, nranks=16, cluster=SMALL, library="boringssl", iters=1
    )
    expected = get_profile("boringssl", "gcc").encdec_time(size)
    assert 0.15 * expected < (enc - base) < 1.2 * expected


def test_alltoall_crypto_cost_tracks_p_encdecs():
    """Algorithm 1: each rank encrypts p chunks and decrypts p chunks;
    the pairwise exchange additionally serializes neighbours' crypto,
    so the measured delta brackets the serial estimate."""
    from repro.models.cryptolib import get_profile

    size = 64 * KiB
    p = 16
    base = collective_latency("alltoall", size, nranks=p, cluster=SMALL, iters=1)
    enc = collective_latency(
        "alltoall", size, nranks=p, cluster=SMALL, library="boringssl", iters=1
    )
    profile = get_profile("boringssl", "gcc")
    expected = p * profile.encdec_time(size)
    assert 0.5 * expected < (enc - base) < 2.0 * expected


def test_real_crypto_mode_matches_modeled_timing():
    """Virtual time must not depend on whether payload bytes are really
    encrypted (mode changes wall-clock cost only)."""
    def make(mode):
        def prog(ctx):
            enc = EncryptedComm(ctx, SecurityConfig(crypto_mode=mode))
            if ctx.rank == 0:
                enc.send(b"q" * 32 * 1024, 1)
                return ctx.now
            enc.recv(0)
            return ctx.now

        return prog

    t_real = run_program(2, make("real"), cluster=SMALL).results[1]
    t_model = run_program(2, make("modeled"), cluster=SMALL).results[1]
    assert t_real == pytest.approx(t_model, rel=1e-12)


def test_determinism_across_runs():
    """Two identical simulations produce identical virtual timings."""
    def prog(ctx):
        enc = EncryptedComm(ctx, SecurityConfig(crypto_mode="modeled"))
        chunks = [b"d" * 2048 for _ in range(ctx.size)]
        enc.alltoall(chunks)
        ctx.comm.barrier()
        return ctx.now

    a = run_program(8, prog, cluster=SMALL).results
    b = run_program(8, prog, cluster=SMALL).results
    assert a == b


def test_scalability_settings_run():
    """The paper's scalability grid (4r/4n, 16r/4n, 16r/8n, 64r/8n) —
    exercised here at the three smaller settings."""
    from repro.models.cpu import PAPER_CLUSTER

    def prog(ctx):
        data = b"s" * 1024 if ctx.rank == 0 else None
        out = ctx.comm.bcast(data, 0, nbytes=1024)
        assert len(out) == 1024
        return ctx.now

    for nranks, cluster in (
        (4, ClusterSpec(4, 8)),
        (16, ClusterSpec(4, 8)),
        (16, PAPER_CLUSTER),
    ):
        res = run_program(nranks, prog, cluster=cluster)
        assert res.duration > 0
