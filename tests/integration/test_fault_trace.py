"""Fault injection × structured tracing: attacks leave explicit events.

The point of the trace layer for security work: a corrupted envelope
must surface as an ``auth_fail`` event and a duplicated one as a
``replay_drop`` — not just as an exception somewhere in a rank program.
"""

import pytest

from repro.crypto.errors import AuthenticationError
from repro.encmpi import EncryptedComm, SecurityConfig
from repro.encmpi.replay import ReplayError
from repro.models.cpu import ClusterSpec
from repro.simmpi import run_program
from repro.simmpi.faults import FaultAction, FaultInjector, target_route
from repro.simmpi.tracing import TraceRecorder

CLUSTER = ClusterSpec(nodes=2, cores_per_node=4)


def test_corruption_emits_auth_fail_event():
    injector = FaultInjector(target_route(0, 1, FaultAction.CORRUPT),
                             corrupt_bit=300)
    rec = TraceRecorder()

    def prog(ctx):
        enc = EncryptedComm(ctx, SecurityConfig())
        if ctx.rank == 0:
            enc.send(b"\x00" * 64, 1, tag=0)
            return "sent"
        try:
            enc.recv(0, 0)
            return "accepted"
        except AuthenticationError:
            return "rejected"

    res = run_program(2, prog, cluster=CLUSTER, trace=rec,
                      fault_injector=injector)
    assert res.results == ["sent", "rejected"]
    (fail,) = rec.events_in("aead", "auth_fail")
    assert fail.rank == 1
    assert rec.rank_counters(1).auth_failures == 1
    # the successful seal on rank 0 is still there
    assert len(rec.events_in("aead", "seal")) == 1
    assert not rec.events_in("aead", "open")  # rejection, not decryption


def test_duplicate_emits_replay_drop_event():
    """With replay_window configured, the duplicated envelope is dropped
    by the EncryptedComm itself — no hand-rolled guard in the program —
    and the drop is visible in the trace."""
    injector = FaultInjector(target_route(0, 1, FaultAction.DUPLICATE))
    rec = TraceRecorder()
    config = SecurityConfig(nonce_strategy="counter", replay_window=16)

    def prog(ctx):
        enc = EncryptedComm(ctx, config)
        if ctx.rank == 0:
            enc.send(b"pay me once", 1, tag=0)
            return ["sent"]
        outcomes = []
        for _ in range(2):  # original + duplicate both arrive
            try:
                enc.recv(0, 0)
                outcomes.append("accepted")
            except ReplayError:
                outcomes.append("replay-blocked")
        return outcomes

    res = run_program(2, prog, cluster=CLUSTER, trace=rec,
                      fault_injector=injector)
    assert res.results[1] == ["accepted", "replay-blocked"]
    (drop,) = rec.events_in("aead", "replay_drop")
    assert drop.rank == 1
    assert drop.data["src"] == 0
    assert drop.data["counter"] == 0
    assert rec.rank_counters(1).replay_drops == 1
    # exactly one open: the original; the replay never reached the AEAD
    assert len(rec.events_in("aead", "open")) == 1


def test_duplicate_without_replay_window_is_accepted_twice():
    """The paper's threat model (no replay protection): both copies
    decrypt fine and no replay_drop event appears — the gap the
    replay_window option closes."""
    injector = FaultInjector(target_route(0, 1, FaultAction.DUPLICATE))
    rec = TraceRecorder()
    config = SecurityConfig(nonce_strategy="counter")  # replay_window=0

    def prog(ctx):
        enc = EncryptedComm(ctx, config)
        if ctx.rank == 0:
            enc.send(b"pay me twice", 1, tag=0)
            return None
        return [enc.recv(0, 0)[0] for _ in range(2)]

    res = run_program(2, prog, cluster=CLUSTER, trace=rec,
                      fault_injector=injector)
    assert res.results[1] == [b"pay me twice", b"pay me twice"]
    assert not rec.events_in("aead", "replay_drop")
    assert len(rec.events_in("aead", "open")) == 2


def test_duplicate_clone_preserves_payload_bytes():
    """The injector's clone must carry the original's payload_bytes
    (collective-internal envelopes pack headers, so len(payload) would
    over-count) — otherwise duplicated traffic shows payload > wire."""
    from repro.simmpi.message import Envelope

    env = Envelope(src=0, dst=1, tag=0, comm_id=0,
                   payload=b"\x00\x00\x00\x64" + b"g" * 100,
                   wire_bytes=100, payload_bytes=100)
    injector = FaultInjector(lambda _env: FaultAction.DUPLICATE)
    original, clone = injector.apply(env)
    assert clone.payload_bytes == original.payload_bytes == 100
    assert clone.wire_bytes == 100
