"""Fault-injection integration tests: the threat the paper's integrity
guarantee exists for, exercised end-to-end."""

import pytest

from repro.des.engine import DeadlockError
from repro.des.process import ProcessFailed
from repro.encmpi import EncryptedComm, SecurityConfig
from repro.models.cpu import ClusterSpec
from repro.simmpi import run_program
from repro.simmpi.faults import (
    FaultAction,
    FaultInjector,
    corrupt_every_nth,
    target_route,
)

CLUSTER = ClusterSpec(nodes=2, cores_per_node=4)


def test_plain_mpi_silently_accepts_corruption():
    """Without encryption a flipped bit is just... different data."""
    injector = FaultInjector(target_route(0, 1, FaultAction.CORRUPT))

    def prog(ctx):
        if ctx.rank == 0:
            ctx.comm.send(b"\x00" * 64, 1, tag=0)
        else:
            data, _status = ctx.comm.recv(0, 0)
            return data

    res = run_program(2, prog, cluster=CLUSTER, fault_injector=injector)
    assert res.results[1] != b"\x00" * 64  # corrupted...
    assert len(res.results[1]) == 64  # ...and accepted!
    assert injector.injected[FaultAction.CORRUPT] == 1


def test_encrypted_mpi_rejects_corruption():
    """The same attack against AES-GCM framing raises in the receiver."""
    injector = FaultInjector(target_route(0, 1, FaultAction.CORRUPT),
                             corrupt_bit=200)

    def prog(ctx):
        enc = EncryptedComm(ctx, SecurityConfig())
        if ctx.rank == 0:
            enc.send(b"\x00" * 64, 1, tag=0)
        else:
            enc.recv(0, 0)

    with pytest.raises(ProcessFailed, match="AuthenticationError|tamper"):
        run_program(2, prog, cluster=CLUSTER, fault_injector=injector)


def test_dropped_message_surfaces_as_hang():
    injector = FaultInjector(target_route(0, 1, FaultAction.DROP))

    def prog(ctx):
        if ctx.rank == 0:
            ctx.comm.send(b"gone", 1, tag=0)
        else:
            ctx.comm.recv(0, 0)

    with pytest.raises(DeadlockError):
        run_program(2, prog, cluster=CLUSTER, fault_injector=injector)


def test_duplicate_detected_by_replay_guard():
    from repro.encmpi.replay import ReplayError, ReplayGuard, counter_of_nonce

    injector = FaultInjector(target_route(0, 1, FaultAction.DUPLICATE))

    def prog(ctx):
        enc = EncryptedComm(ctx, SecurityConfig(nonce_strategy="counter"))
        if ctx.rank == 0:
            enc.send(b"pay me once", 1, tag=0)
        else:
            guard = ReplayGuard()
            outcomes = []
            for _ in range(2):  # original + duplicate both arrive
                wire = ctx.comm.irecv(0, 0).wait()
                try:
                    guard.check(counter_of_nonce(bytes(wire[:12])))
                    outcomes.append("accepted")
                except ReplayError:
                    outcomes.append("replay-blocked")
            return outcomes

    res = run_program(2, prog, cluster=CLUSTER, fault_injector=injector)
    assert res.results[1] == ["accepted", "replay-blocked"]


def test_corrupt_every_nth_policy():
    injector = FaultInjector(corrupt_every_nth(3))
    n_msgs = 7

    def prog(ctx):
        if ctx.rank == 0:
            for i in range(n_msgs):
                ctx.comm.send(bytes([i]) * 8, 1, tag=0)
        else:
            bad = 0
            for i in range(n_msgs):
                data, _status = ctx.comm.recv(0, 0)
                if data != bytes([i]) * 8:
                    bad += 1
            return bad

    res = run_program(2, prog, cluster=CLUSTER, fault_injector=injector)
    assert res.results[1] == 3  # messages 0, 3, 6
    assert injector.injected[FaultAction.CORRUPT] == 3


def test_policy_validation():
    with pytest.raises(ValueError):
        corrupt_every_nth(0)
