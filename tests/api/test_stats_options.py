"""StatsSpec through the facade: repetition determinism, the
repetitions= shim, and the loose-kwarg/options= exclusivity rule."""

import warnings

import pytest

from repro import api
from repro.experiments.stats import StatsSpec
from repro.models.cpu import ClusterSpec
from repro.models.network import FabricSpec
from repro.simmpi.resilience import ResiliencePolicy
from repro.simmpi.tracing import TraceRecorder

CLUSTER = ClusterSpec(nodes=2, cores_per_node=4)
TAG_EXCHANGE = 3
NOISY = FabricSpec(base="wan", jitter=0.1, wobble=0.05, loss=0.02, seed=7)
POLICY = ResiliencePolicy(max_retries=6, timeout=5e-3,
                          escalation="plain_fallback")


def _exchange_many(ctx):
    for i in range(6):
        if ctx.rank == 0:
            ctx.comm.send(bytes([i]) * 128, 1, tag=TAG_EXCHANGE)
            ctx.comm.recv(1, TAG_EXCHANGE)
        else:
            ctx.comm.recv(0, TAG_EXCHANGE)
            ctx.comm.send(bytes([i]) * 128, 0, tag=TAG_EXCHANGE)
    return ctx.now


@pytest.fixture(autouse=True)
def _fresh_warning_ledger():
    api._warned.clear()
    yield
    api._warned.clear()


def _noisy_job(**kwargs):
    return api.run_job(
        _exchange_many, nranks=2, cluster=CLUSTER, network=NOISY,
        resilience=POLICY, **kwargs,
    )


def test_stats_attaches_samples_and_ci():
    job = _noisy_job(stats=StatsSpec(reps=5))
    assert job.stats is not None
    assert job.stats.metric == "duration"
    assert len(job.stats.samples) == 5
    est = job.stats.estimate
    assert est.lo <= est.median <= est.hi
    # the jittered fabric actually varies across the seeded reps
    assert len(set(job.stats.samples)) > 1
    # repetition 0 is the result the rest of the JobResult reports
    assert job.duration == job.stats.samples[0]


def test_stats_spec_string_accepted():
    a = _noisy_job(stats="reps=3,confidence=90%")
    b = _noisy_job(stats=StatsSpec(reps=3, confidence=0.9))
    assert a.stats == b.stats


def test_repetitions_are_byte_deterministic():
    a = _noisy_job(stats=StatsSpec(reps=4))
    b = _noisy_job(stats=StatsSpec(reps=4))
    assert a.stats.samples == b.stats.samples
    assert a.stats.estimate == b.stats.estimate
    # a different master seed draws a different noise sequence
    shifted = _noisy_job(stats=StatsSpec(reps=4, seed=99))
    assert shifted.stats.samples != a.stats.samples


def test_clean_fabric_reps_are_identical_samples():
    job = api.run_job(
        _exchange_many, nranks=2, cluster=CLUSTER, network="ethernet",
        stats=StatsSpec(reps=3),
    )
    assert len(set(job.stats.samples)) == 1
    assert job.stats.estimate.halfwidth == 0.0


def test_repetitions_kwarg_shim_warns_once_and_matches_stats():
    with pytest.warns(DeprecationWarning, match="repetitions"):
        shimmed = _noisy_job(repetitions=3)
    direct = _noisy_job(stats=StatsSpec(reps=3))
    assert shimmed.stats == direct.stats
    assert shimmed.duration == direct.duration
    with warnings.catch_warnings():
        warnings.simplefilter("error")  # second use: shim stays silent
        _noisy_job(repetitions=2)


def test_repetitions_and_stats_together_is_an_error():
    with pytest.raises(TypeError, match="not both"), \
            pytest.warns(DeprecationWarning):
        _noisy_job(stats=StatsSpec(reps=3), repetitions=3)


def test_stats_kwarg_conflicts_with_options_bundle():
    with pytest.raises(TypeError, match="not both"):
        api.run_job(
            _exchange_many, nranks=2, cluster=CLUSTER,
            stats=StatsSpec(reps=2), options=api.RunOptions(),
        )


def test_options_bundle_carries_stats():
    bundled = api.run_job(
        _exchange_many, nranks=2, cluster=CLUSTER, network=NOISY,
        options=api.RunOptions(stats=StatsSpec(reps=3), resilience=POLICY),
    )
    loose = _noisy_job(stats=StatsSpec(reps=3))
    assert bundled.stats == loose.stats


def test_shared_trace_recorder_rejected_across_reps():
    with pytest.raises(RuntimeError, match="TraceRecorder"):
        api.run_job(
            _exchange_many, nranks=2, cluster=CLUSTER, network=NOISY,
            resilience=POLICY, trace=TraceRecorder(),
            stats=StatsSpec(reps=2),
        )


def test_sweep_cells_get_independent_but_identical_rep_streams():
    points = api.sweep(
        _exchange_many, nranks=2, cluster=CLUSTER,
        networks=(NOISY, "ethernet"),
        resilience=POLICY, stats=StatsSpec(reps=3),
    )
    assert [p.network for p in points] == [NOISY.token(), "ethernet"]
    noisy_point, clean_point = points
    assert len(noisy_point.result.stats.samples) == 3
    # and the whole sweep replays byte-identically
    again = api.sweep(
        _exchange_many, nranks=2, cluster=CLUSTER,
        networks=(NOISY, "ethernet"),
        resilience=POLICY, stats=StatsSpec(reps=3),
    )
    assert [p.result.stats for p in again] == [p.result.stats for p in points]


def test_parallel_sweep_matches_serial():
    serial = api.sweep(
        _exchange_many, nranks=2, cluster=CLUSTER,
        networks=(NOISY, FabricSpec(base="iot", jitter=0.2, seed=3)),
        resilience=POLICY, stats=StatsSpec(reps=3),
    )
    threaded = api.sweep(
        _exchange_many, nranks=2, cluster=CLUSTER,
        networks=(NOISY, FabricSpec(base="iot", jitter=0.2, seed=3)),
        resilience=POLICY, stats=StatsSpec(reps=3), parallel=2,
    )
    assert [p.result.stats for p in threaded] == \
        [p.result.stats for p in serial]
    assert [p.result.duration for p in threaded] == \
        [p.result.duration for p in serial]
