"""sweep() fault injection and parallel-grid semantics.

PR 1's sweep silently accepted no fault injector at all (the keyword
existed only on run_job); these tests pin the repaired surface: the
keyword is forwarded per cell, one injector instance is never shared
across cells (mirroring the TraceRecorder rule), and a factory form
gives each cell a fresh adversary.
"""

import pytest

from repro import api
from repro.crypto.errors import AuthenticationError
from repro.models.cpu import ClusterSpec
from repro.simmpi.faults import FaultAction, FaultInjector, target_route

CLUSTER = ClusterSpec(nodes=2, cores_per_node=4)
SECURITY = api.SecurityConfig(nonce_strategy="counter", crypto_mode="real")


def _enc_exchange(ctx):
    if ctx.rank == 0:
        ctx.enc.send(b"\x00" * 64, 1, tag=0)
        return "sent"
    try:
        ctx.enc.recv(0, 0)
        return "accepted"
    except AuthenticationError:
        return "rejected"


def _corrupting_factory():
    return FaultInjector(target_route(0, 1, FaultAction.CORRUPT),
                         corrupt_bit=300)


def test_sweep_cell_records_auth_fail_events():
    """The regression the satellite names: a sweep cell under fault
    injection must actually reject the tampered message and record the
    auth_fail event in its trace."""
    points = api.sweep(
        _enc_exchange,
        nranks=2,
        networks=("ethernet", "infiniband"),
        securities=(SECURITY,),
        cluster=CLUSTER,
        trace="events",
        fault_injector=_corrupting_factory,
    )
    assert len(points) == 2
    for point in points:
        assert point.result.results == ["sent", "rejected"]
        (fail,) = point.result.trace.events_in("aead", "auth_fail")
        assert fail.rank == 1


def test_sweep_rejects_one_injector_instance_across_cells():
    with pytest.raises(ValueError, match="factory"):
        api.sweep(
            _enc_exchange,
            nranks=2,
            networks=("ethernet", "infiniband"),
            securities=(SECURITY,),
            cluster=CLUSTER,
            fault_injector=_corrupting_factory(),
        )


def test_sweep_accepts_one_injector_instance_for_one_cell():
    injector = _corrupting_factory()
    points = api.sweep(
        _enc_exchange,
        nranks=2,
        securities=(SECURITY,),
        cluster=CLUSTER,
        fault_injector=injector,
    )
    assert points[0].result.results == ["sent", "rejected"]
    assert injector.injected[FaultAction.CORRUPT] == 1  # ledger usable


def test_sweep_factory_is_invoked_once_per_cell():
    made = []

    def counting_factory():
        made.append(1)
        return _corrupting_factory()

    api.sweep(
        _enc_exchange,
        nranks=2,
        networks=("ethernet", "infiniband"),
        securities=(SECURITY,),
        cluster=CLUSTER,
        fault_injector=counting_factory,
    )
    assert len(made) == 2


def test_sweep_rejects_non_injector_non_factory():
    with pytest.raises(TypeError, match="fault_injector"):
        api.sweep(_enc_exchange, nranks=2, securities=(SECURITY,),
                  cluster=CLUSTER, fault_injector="corrupt-everything")


def test_parallel_sweep_matches_serial_byte_for_byte():
    def workload(ctx):
        comm = ctx.enc if ctx.enc is not None else ctx.comm
        peer = 1 - ctx.rank
        rreq = comm.irecv(peer, tag=1)
        sreq = comm.isend(b"\x07" * 512, peer, tag=1)
        got = rreq.wait()
        sreq.wait()
        ctx.comm.barrier()
        return len(got)

    kwargs = dict(
        nranks=2,
        networks=("ethernet", "infiniband"),
        securities=(None, SECURITY),
        cluster=CLUSTER,
        trace="events",
    )
    serial = api.sweep(workload, **kwargs)
    parallel = api.sweep(workload, parallel=2, **kwargs)
    assert [p.label for p in parallel] == [p.label for p in serial]
    for s_point, p_point in zip(serial, parallel):
        assert p_point.result.results == s_point.result.results
        assert p_point.result.duration == s_point.result.duration
        assert p_point.result.spans == s_point.result.spans
        # the structured traces agree digest-for-digest across workers
        if s_point.result.trace is not None:
            assert p_point.result.trace.digest() == s_point.result.trace.digest()


def test_parallel_sweep_with_faults_uses_fresh_injector_per_cell():
    points = api.sweep(
        _enc_exchange,
        nranks=2,
        networks=("ethernet", "infiniband"),
        securities=(SECURITY,),
        cluster=CLUSTER,
        parallel=2,
        fault_injector=_corrupting_factory,
    )
    assert [p.result.results for p in points] == [["sent", "rejected"]] * 2
