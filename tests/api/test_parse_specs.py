"""Error-path contracts of the three CLI spec parsers.

``parse_crypto_plan``, ``parse_fault_plan`` and
``parse_resilience_policy`` share a grammar discipline: malformed
tokens, duplicate/conflicting keys, and unknown keys or modes all raise
:class:`ValueError`, and every "unknown X" message *names the valid
alternatives* so the CLI error is self-repairing.  All three are also
re-exported from :mod:`repro.api` for hosts that build specs
programmatically."""

import pytest

import repro.api as api
from repro.encmpi.plan import CRYPTO_PLAN_MODES, parse_crypto_plan
from repro.models.cryptolib import PROFILED_LIBRARIES
from repro.simmpi.faults import parse_fault_plan
from repro.simmpi.resilience import parse_resilience_policy


def test_api_reexports_the_parsers():
    assert api.parse_crypto_plan is parse_crypto_plan
    assert api.parse_fault_plan is parse_fault_plan
    assert api.parse_resilience_policy is parse_resilience_policy


# ------------------------------------------------------- parse_crypto_plan

def test_crypto_plan_round_trip():
    plan = parse_crypto_plan("cryptmpi:chunk=256k,cores=3,library=openssl")
    assert (plan.mode, plan.chunk_bytes, plan.helper_cores, plan.library) \
        == ("cryptmpi", 256 * 1024, 3, "openssl")


def test_crypto_plan_unknown_mode_names_valid_modes():
    with pytest.raises(ValueError) as err:
        parse_crypto_plan("gcm")
    for mode in CRYPTO_PLAN_MODES:
        assert mode in str(err.value)


def test_crypto_plan_malformed_option():
    with pytest.raises(ValueError, match="need key=value"):
        parse_crypto_plan("serial:chunk")


def test_crypto_plan_duplicate_key_conflicts():
    with pytest.raises(ValueError, match="duplicate crypto option"):
        parse_crypto_plan("cryptmpi:chunk=64k,chunk=256k")


def test_crypto_plan_unknown_key_names_valid_keys():
    with pytest.raises(ValueError) as err:
        parse_crypto_plan("cryptmpi:threads=4")
    msg = str(err.value)
    assert "unknown crypto option" in msg
    for key in ("chunk", "cores", "library", "bytework"):
        assert key in msg


def test_crypto_plan_unknown_library_names_profiled():
    with pytest.raises(ValueError) as err:
        parse_crypto_plan("serial:library=rustls")
    for lib in PROFILED_LIBRARIES:
        assert lib in str(err.value)


# -------------------------------------------------------- parse_fault_plan

def test_fault_plan_round_trip():
    plan = parse_fault_plan("drop=0.05,corrupt=0.02,seed=7")
    assert (plan.drop, plan.corrupt, plan.seed) == (0.05, 0.02, 7)


def test_fault_plan_malformed_option():
    with pytest.raises(ValueError, match="need key=value"):
        parse_fault_plan("drop")


def test_fault_plan_duplicate_key_conflicts():
    with pytest.raises(ValueError, match="duplicate fault option"):
        parse_fault_plan("drop=0.1,drop=0.2")


def test_fault_plan_unknown_key_names_valid_keys():
    with pytest.raises(ValueError) as err:
        parse_fault_plan("loss=0.1")
    msg = str(err.value)
    assert "unknown fault option" in msg
    for key in ("drop", "corrupt", "duplicate", "seed"):
        assert key in msg


def test_fault_plan_out_of_range_rate():
    with pytest.raises(ValueError):
        parse_fault_plan("drop=1.5")


# ------------------------------------------------- parse_resilience_policy

def test_resilience_round_trip():
    policy = parse_resilience_policy("retries=3,timeout=0.001,backoff=fixed")
    assert (policy.max_retries, policy.timeout, policy.backoff) \
        == (3, 0.001, "fixed")


def test_resilience_malformed_option():
    with pytest.raises(ValueError, match="need key=value"):
        parse_resilience_policy("retries")


def test_resilience_alias_conflict():
    # retries and max_retries are the same knob; giving both must not
    # silently keep the last one
    with pytest.raises(ValueError, match="conflicting resilience option"):
        parse_resilience_policy("retries=2,max_retries=3")


def test_resilience_duplicate_key_conflicts():
    with pytest.raises(ValueError, match="conflicting resilience option"):
        parse_resilience_policy("timeout=0.001,timeout=0.002")


def test_resilience_unknown_key_names_valid_keys():
    with pytest.raises(ValueError) as err:
        parse_resilience_policy("attempts=3")
    msg = str(err.value)
    assert "unknown resilience option" in msg
    for key in ("retries", "timeout", "backoff", "escalation", "factor"):
        assert key in msg


def test_resilience_unknown_backoff_names_valid_modes():
    with pytest.raises(ValueError) as err:
        parse_resilience_policy("backoff=cubic")
    assert "exponential" in str(err.value)
    assert "fixed" in str(err.value)
