"""Acceptance tests for structured tracing through the public facade."""

import pytest

from repro import api
from repro.simmpi.tracing import CommTrace, TraceRecorder


def _enc_workload(ctx):
    peer = 1 - ctx.rank
    rreq = ctx.enc.irecv(peer, tag=1)
    sreq = ctx.enc.isend(b"\x07" * 512, peer, tag=1)
    got = rreq.wait()
    sreq.wait()
    ctx.comm.barrier()
    return len(got)


SECURITY = api.SecurityConfig(nonce_strategy="counter", crypto_mode="real")


def test_run_job_trace_events_covers_every_layer():
    """The headline contract: one encrypted job traced end to end shows
    events from the engine, transport, collective, and AEAD layers."""
    result = api.run_job(_enc_workload, nranks=2, security=SECURITY,
                         trace="events")
    rec = result.trace
    assert isinstance(rec, TraceRecorder)
    assert {"engine", "transport", "collective", "aead"} <= rec.layers()
    assert result.results == [512, 512]
    # AEAD events carry backend, byte count, and virtual duration
    seal = rec.events_in("aead", "seal")[0]
    assert seal.data["bytes"] == 512
    assert seal.data["dur"] > 0
    assert seal.data["backend"]
    # counters snapshot is complete and consistent
    snap = rec.counters_snapshot()
    for rank in (0, 1):
        assert snap[rank]["aead_seals"] == snap[rank]["aead_opens"] == 1
        assert snap[rank]["bytes_sealed"] == 512
        assert snap[rank]["nonces_consumed"] == 1
    # the aggregate CommTrace view rides along
    assert rec.comm.total_messages > 0


def test_run_job_accepts_caller_constructed_recorder():
    mine = TraceRecorder()
    result = api.run_job(_enc_workload, nranks=2, security=SECURITY,
                         trace=mine)
    assert result.trace is mine
    assert mine.events


def test_run_job_trace_true_keeps_comm_trace_shape():
    result = api.run_job(_enc_workload, nranks=2, security=SECURITY,
                         trace=True)
    assert isinstance(result.trace, CommTrace)
    assert not isinstance(result.trace, TraceRecorder)


def test_sweep_forwards_trace_to_every_cell():
    points = api.sweep(
        _enc_workload,
        nranks=2,
        securities=(SECURITY,),
        networks=("ethernet", "infiniband"),
        trace="events",
    )
    assert len(points) == 2
    recorders = [p.result.trace for p in points]
    assert all(isinstance(r, TraceRecorder) for r in recorders)
    assert recorders[0] is not recorders[1]
    # same program, different fabric: same event structure, different times
    assert recorders[0].kind_counts() == recorders[1].kind_counts()


def test_sweep_rejects_one_recorder_across_cells():
    mine = TraceRecorder()
    with pytest.raises(RuntimeError, match="fresh recorder"):
        api.sweep(
            _enc_workload,
            nranks=2,
            securities=(SECURITY,),
            networks=("ethernet", "infiniband"),
            trace=mine,
        )


# ---------------------------------------------------------------------------
# the typed TraceMode surface
# ---------------------------------------------------------------------------


def test_unknown_trace_string_raises_value_error_naming_modes():
    with pytest.raises(ValueError, match="eventz") as exc_info:
        api.run_job(_enc_workload, nranks=2, security=SECURITY,
                    trace="eventz")
    message = str(exc_info.value)
    assert "'events'" in message and "aggregate" in message
    # sweep rejects it eagerly too, before any cell runs
    with pytest.raises(ValueError, match="unknown trace mode"):
        api.sweep(_enc_workload, nranks=2, securities=(SECURITY,),
                  trace="evnts")


def test_parse_trace_mode_accepts_documented_spellings():
    from repro.simmpi.tracing import parse_trace_mode

    assert parse_trace_mode(None) is False
    assert parse_trace_mode("off") is False
    assert parse_trace_mode("false") is False
    assert parse_trace_mode("aggregate") is True
    assert parse_trace_mode("true") is True
    assert parse_trace_mode("events") == "events"
    assert parse_trace_mode(True) is True
    mine = TraceRecorder()
    assert parse_trace_mode(mine) is mine
    with pytest.raises(TypeError):
        parse_trace_mode(42)
