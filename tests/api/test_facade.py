"""Golden-path tests for the repro.api facade.

The facade must be a zero-cost veneer: run_job with/without a
SecurityConfig produces exactly the virtual timings and results of the
direct simmpi/encmpi invocation it replaces.
"""

import pytest

from repro import api
from repro.encmpi import EncryptedComm, SecurityConfig
from repro.models.cpu import ClusterSpec
from repro.simmpi import run_program

CLUSTER = ClusterSpec(nodes=2, cores_per_node=4)
MESSAGE = b"\xa5" * 4096


def _plain_workload(ctx):
    if ctx.rank == 0:
        ctx.comm.send(MESSAGE, 1, tag=7)
        return ctx.now
    data, _status = ctx.comm.recv(0, 7)
    assert data == MESSAGE
    return ctx.now


def test_run_job_plain_matches_run_program():
    direct = run_program(2, _plain_workload, network="ethernet", cluster=CLUSTER)
    via_api = api.run_job(
        _plain_workload, nranks=2, network="ethernet", cluster=CLUSTER
    )
    assert via_api.results == direct.results
    assert via_api.duration == direct.duration
    assert via_api.spans == direct.spans
    assert via_api.security is None
    assert via_api.network == "ethernet"


def test_run_job_encrypted_matches_direct_encmpi():
    sec = SecurityConfig(library="boringssl")

    def direct_program(ctx):
        enc = EncryptedComm(ctx, sec)
        if ctx.rank == 0:
            enc.send(MESSAGE, 1, tag=3)
            return ctx.now
        data, _status = enc.recv(0, 3)
        assert data == MESSAGE
        return ctx.now

    def facade_workload(ctx):
        assert ctx.enc is not None, "run_job(security=...) must populate ctx.enc"
        if ctx.rank == 0:
            ctx.enc.send(MESSAGE, 1, tag=3)
            return ctx.now
        data, _status = ctx.enc.recv(0, 3)
        assert data == MESSAGE
        return ctx.now

    direct = run_program(2, direct_program, network="ethernet", cluster=CLUSTER)
    via_api = api.run_job(
        facade_workload, nranks=2, security=sec, network="ethernet", cluster=CLUSTER
    )
    assert via_api.results == direct.results
    assert via_api.duration == direct.duration
    assert via_api.security is sec


def test_run_job_without_security_leaves_enc_none():
    def workload(ctx):
        return ctx.enc

    res = api.run_job(workload, nranks=2, cluster=CLUSTER)
    assert res.results == [None, None]


def test_run_job_arguments_are_keyword_only():
    with pytest.raises(TypeError):
        api.run_job(_plain_workload, 2)  # nranks positionally


def test_sweep_grid_order_and_labels():
    sec = SecurityConfig(library="libsodium")
    points = api.sweep(
        lambda ctx: ctx.now,
        nranks=2,
        networks=("ethernet", "infiniband"),
        securities=(None, sec),
        cluster=CLUSTER,
    )
    assert [p.label for p in points] == [
        "ethernet/baseline",
        "ethernet/libsodium",
        "infiniband/baseline",
        "infiniband/libsodium",
    ]
    # Each cell is a real JobResult from an independent run.
    assert all(p.result.duration >= 0.0 for p in points)
    # An encrypted run on the same fabric takes at least as long as the
    # baseline (crypto time is charged to the ranks).
    assert points[1].result.duration >= points[0].result.duration


def test_get_experiment_reexport():
    exp = api.get_experiment("fig2")
    assert exp.paper_ref == "Fig. 2"
    assert any(e.id == "fig6" for e in api.list_experiments())
    with pytest.raises(ValueError):
        api.get_experiment("nope")


def test_top_level_lazy_exports():
    import repro

    assert repro.run_job is api.run_job
    assert repro.sweep is api.sweep
    assert repro.JobResult is api.JobResult
    with pytest.raises(AttributeError):
        repro.not_a_real_name
