"""The typed RunOptions / FaultPlan facade.

The redesign's contract: ``options=RunOptions(...)`` is byte-for-byte
equivalent to the loose keyword tail it replaces, mixing the two forms
is an error, and the deprecated raw-injector spellings keep working
behind a one-shot DeprecationWarning.
"""

import warnings

import pytest

from repro import api
from repro.models.cpu import ClusterSpec
from repro.simmpi.faults import FaultAction, FaultInjector, FaultPlan, target_route
from repro.simmpi.resilience import ResiliencePolicy

CLUSTER = ClusterSpec(nodes=2, cores_per_node=4)
TAG_EXCHANGE = 3
PLAN = FaultPlan(drop=0.25, seed=5)
POLICY = ResiliencePolicy(max_retries=4, timeout=1e-3)


def _workload(ctx):
    if ctx.rank == 0:
        ctx.comm.send(b"\x11" * 256, 1, tag=TAG_EXCHANGE)
        return ctx.now
    data, _status = ctx.comm.recv(0, TAG_EXCHANGE)
    return (ctx.now, data)


def _exchange_many(ctx):
    for i in range(6):
        if ctx.rank == 0:
            ctx.comm.send(bytes([i]) * 128, 1, tag=TAG_EXCHANGE)
            ctx.comm.recv(1, TAG_EXCHANGE)
        else:
            ctx.comm.recv(0, TAG_EXCHANGE)
            ctx.comm.send(bytes([i]) * 128, 0, tag=TAG_EXCHANGE)
    return ctx.now


@pytest.fixture(autouse=True)
def _fresh_warning_ledger():
    """Each test sees the one-shot deprecation warnings anew."""
    api._warned.clear()
    yield
    api._warned.clear()


def test_run_options_is_frozen_and_normalizes_trace():
    opts = api.RunOptions(trace="events", faults=PLAN, resilience=POLICY)
    with pytest.raises(AttributeError):
        opts.trace = False
    bad = pytest.raises(ValueError, api.RunOptions, trace="evnts")
    assert "trace" in str(bad.value)
    with pytest.raises(TypeError, match="resilience"):
        api.RunOptions(resilience="retries=3")


def test_options_equivalent_to_loose_kwargs():
    loose = api.run_job(
        _exchange_many, nranks=2, cluster=CLUSTER,
        trace=True, faults=PLAN, resilience=POLICY,
    )
    bundled = api.run_job(
        _exchange_many, nranks=2, cluster=CLUSTER,
        options=api.RunOptions(trace=True, faults=PLAN, resilience=POLICY),
    )
    assert loose.results == bundled.results
    assert loose.duration == bundled.duration
    assert loose.spans == bundled.spans
    assert loose.resilience == bundled.resilience


def test_options_conflicts_with_loose_kwargs():
    with pytest.raises(TypeError, match="not both"):
        api.run_job(
            _workload, nranks=2, cluster=CLUSTER,
            trace=True, options=api.RunOptions(trace=True),
        )
    with pytest.raises(TypeError, match="not both"):
        api.run_job(
            _workload, nranks=2, cluster=CLUSTER,
            resilience=POLICY, options=api.RunOptions(),
        )


def test_fault_plan_accepted_without_warning():
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        job = api.run_job(
            _exchange_many, nranks=2, cluster=CLUSTER,
            faults=PLAN, resilience=POLICY,
        )
    assert job.resilience.gave_up == 0


def test_raw_injector_warns_once():
    inj = FaultInjector(target_route(2, 3, FaultAction.DROP))
    with pytest.warns(DeprecationWarning, match="FaultPlan"):
        api.run_job(_workload, nranks=2, cluster=CLUSTER, faults=inj)
    with warnings.catch_warnings():
        warnings.simplefilter("error")  # second use: shim stays silent
        api.run_job(_workload, nranks=2, cluster=CLUSTER, faults=inj)


def test_fault_injector_kwarg_warns_and_aliases_faults():
    inj = FaultInjector(target_route(2, 3, FaultAction.DROP))
    with pytest.warns(DeprecationWarning, match="fault_injector"):
        job = api.run_job(
            _workload, nranks=2, cluster=CLUSTER, fault_injector=inj
        )
    clean = api.run_job(_workload, nranks=2, cluster=CLUSTER)
    assert job.duration == clean.duration  # drop filter matched nothing
    with pytest.raises(TypeError, match="fault_injector"):
        api.run_job(
            _workload, nranks=2, cluster=CLUSTER,
            faults=PLAN, fault_injector=inj,
        )


def test_raw_injector_shim_equivalent_to_plan():
    # The deprecated spelling must produce the exact run the plan does.
    with pytest.warns(DeprecationWarning):
        shimmed = api.run_job(
            _exchange_many, nranks=2, cluster=CLUSTER,
            fault_injector=PLAN.build(), resilience=POLICY,
        )
    direct = api.run_job(
        _exchange_many, nranks=2, cluster=CLUSTER,
        faults=PLAN, resilience=POLICY,
    )
    assert shimmed.duration == direct.duration
    assert shimmed.results == direct.results
    assert shimmed.resilience == direct.resilience


def test_sweep_builds_fresh_injector_per_cell():
    # A plan parameterizes every cell; each build gets its own RNG
    # stream, so both networks see the identical fault sequence.
    points = api.sweep(
        _exchange_many,
        nranks=2,
        networks=("ethernet", "infiniband"),
        cluster=CLUSTER,
        faults=PLAN,
        resilience=POLICY,
    )
    assert len(points) == 2
    retx = [p.result.resilience.retransmits for p in points]
    assert retx[0] == retx[1] > 0


def test_sweep_accepts_options_bundle():
    loose = api.sweep(
        _exchange_many, nranks=2, networks=("ethernet",), cluster=CLUSTER,
        faults=PLAN, resilience=POLICY,
    )
    bundled = api.sweep(
        _exchange_many, nranks=2, networks=("ethernet",), cluster=CLUSTER,
        options=api.RunOptions(faults=PLAN, resilience=POLICY),
    )
    assert loose[0].result.duration == bundled[0].result.duration
    assert loose[0].result.resilience == bundled[0].result.resilience


def test_cluster_options_form_equivalent_to_loose_kwarg():
    spec = ClusterSpec(nodes=2, cores_per_node=2)
    loose = api.run_job(_exchange_many, nranks=2, cluster=spec, trace=True)
    bundled = api.run_job(
        _exchange_many, nranks=2,
        options=api.RunOptions(trace=True, cluster=spec),
    )
    assert loose.results == bundled.results
    assert loose.duration == bundled.duration
    assert loose.spans == bundled.spans


def test_cluster_kwarg_may_accompany_an_options_bundle():
    """cluster predates RunOptions as a job-shape kwarg, so the loose
    spelling stays legal next to a bundle that leaves cluster unset."""
    spec = ClusterSpec(nodes=2, cores_per_node=2)
    mixed = api.run_job(
        _exchange_many, nranks=2, cluster=spec,
        options=api.RunOptions(trace=True),
    )
    bundled = api.run_job(
        _exchange_many, nranks=2,
        options=api.RunOptions(trace=True, cluster=spec),
    )
    assert mixed.duration == bundled.duration
    assert mixed.results == bundled.results


def test_cluster_specified_twice_is_an_error():
    spec = ClusterSpec(nodes=2, cores_per_node=2)
    with pytest.raises(TypeError, match="cluster specified twice"):
        api.run_job(
            _workload, nranks=2, cluster=spec,
            options=api.RunOptions(cluster=CLUSTER),
        )


def test_cluster_typechecks_in_both_spellings():
    with pytest.raises(TypeError, match="ClusterSpec"):
        api.RunOptions(cluster="2x8")
    with pytest.raises(TypeError, match="ClusterSpec"):
        api.run_job(_workload, nranks=2, cluster="2x8",
                    options=api.RunOptions())


def test_cluster_shape_changes_the_simulation():
    """The spec is load-bearing: intra-node vs cross-node placement of
    the same two ranks must produce different timings."""
    one_node = api.run_job(
        _exchange_many, nranks=2,
        options=api.RunOptions(cluster=ClusterSpec(nodes=1,
                                                   cores_per_node=2)),
    )
    two_nodes = api.run_job(
        _exchange_many, nranks=2,
        options=api.RunOptions(cluster=ClusterSpec(nodes=2,
                                                   cores_per_node=2)),
    )
    assert one_node.duration != two_nodes.duration
