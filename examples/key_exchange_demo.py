#!/usr/bin/env python3
"""Key distribution over MPI — the paper's future work, implemented.

§IV: "we did not implement a key distribution mechanism; this is left
as a future work.  In our experiments, the encryption key was hardcoded
in the source code."

This example runs a 16-rank job that (1) agrees on a session key with
a Diffie-Hellman group exchange over the simulated fabric itself,
(2) re-keys for a second epoch, and (3) uses the derived keys for
encrypted collectives — reporting what the handshake costs in virtual
time on both fabrics.

Run:  python examples/key_exchange_demo.py
"""

from repro.encmpi import EncryptedComm, SecurityConfig
from repro.encmpi.keyexchange import establish_session_key
from repro.models.cpu import parse_cluster_spec
from repro.simmpi import run_program
from repro.util.units import format_time

CLUSTER = parse_cluster_spec("4x4")
NRANKS = 16


def job(ctx):
    t0 = ctx.now
    key_epoch0 = establish_session_key(ctx, epoch=0)
    handshake_time = ctx.now - t0

    # All ranks now share a key no one hardcoded; use it.
    enc = EncryptedComm(ctx, SecurityConfig().with_key(key_epoch0))
    roster = enc.allgather(f"rank{ctx.rank}".encode())
    assert roster == [f"rank{i}".encode() for i in range(ctx.size)]

    # Re-key (e.g. after a checkpoint): a fresh epoch gives a fresh key.
    key_epoch1 = establish_session_key(ctx, epoch=1)
    assert key_epoch1 != key_epoch0

    enc2 = EncryptedComm(ctx, SecurityConfig().with_key(key_epoch1))
    payload = b"post-rekey broadcast"
    data = enc2.bcast(payload if ctx.rank == 0 else None, 0, nbytes=len(payload))
    assert data == payload
    return (handshake_time, key_epoch0.hex()[:16])


def main() -> None:
    for network in ("ethernet", "infiniband"):
        result = run_program(NRANKS, job, network=network, cluster=CLUSTER)
        times = [r[0] for r in result.results]
        fingerprints = {r[1] for r in result.results}
        assert len(fingerprints) == 1, "all ranks must derive the same key"
        print(
            f"{network:11s}: {NRANKS}-rank DH handshake took "
            f"{format_time(max(times))} (virtual), key fp "
            f"{fingerprints.pop()}…"
        )
    print("session keys derived via RFC3526 MODP-2048 + HKDF; encrypted "
          "collectives ran under both epochs")


if __name__ == "__main__":
    main()
