#!/usr/bin/env python3
"""Hostile fabrics end to end: FabricSpec, seeded noise, stats CIs.

Runs the encrypted ping-pong on a WAN with jitter, wobble, and loss —
the loss recovered by the reliable-delivery layer — and reports every
number as `median ± CI` from seeded repetitions.  Everything is
virtual-time and seeded: run it twice, get the same bytes.

Run:  python examples/hostile_fabric.py
"""

from repro import api

TAG_PING = 5
MSG = b"\x42" * 1024
ITERS = 8


def pingpong(ctx):
    # verify-sizes: 2  (a strictly two-rank exchange)
    enc = ctx.enc
    if ctx.rank == 0:
        t0 = ctx.now
        for _ in range(ITERS):
            enc.send(MSG, 1, tag=TAG_PING)
            enc.recv(1, TAG_PING)
        return (ctx.now - t0) / (2 * ITERS)
    for _ in range(ITERS):
        enc.recv(0, TAG_PING)
        enc.send(MSG, 0, tag=TAG_PING)
    return None


def main() -> None:
    print("1. one typed fabric, parsed from the spec grammar")
    spec = api.parse_network_spec("wan:jitter=10%,wobble=5%,loss=2%,seed=7")
    print(f"   {spec}")
    print(f"   canonical token: {spec.token()!r} "
          f"(round-trips: {api.parse_network_spec(spec.token()) == spec})\n")

    print("2. encrypted ping-pong on it, 20 seeded reps, 95% CI")
    policy = api.ResiliencePolicy(max_retries=6, timeout=5e-3,
                                  escalation="plain_fallback")
    job = api.run_job(
        pingpong, nranks=2,
        security=api.SecurityConfig(library="boringssl"),
        network=spec,
        options=api.RunOptions(resilience=policy, stats="reps=20"),
    )
    est = job.stats.estimate
    print(f"   one-way latency: {est.median * 1e6:.1f} us "
          f"± {est.halfwidth * 1e6:.1f} (n={est.n})")
    print(f"   reliability: {job.resilience.retransmits} retransmits, "
          f"{job.resilience.acks} acks in rep 0\n")

    print("3. the same master seed reproduces the samples bit-for-bit")
    again = api.run_job(
        pingpong, nranks=2,
        security=api.SecurityConfig(library="boringssl"),
        network=spec,
        options=api.RunOptions(resilience=policy, stats="reps=20"),
    )
    print(f"   samples identical: {again.stats.samples == job.stats.samples}\n")

    print("4. sweep clean vs hostile fabrics (labels use the token)")
    points = api.sweep(
        pingpong, nranks=2,
        securities=(api.SecurityConfig(library="boringssl"),),
        networks=("ethernet", "wan", spec,
                  api.FabricSpec(base="iot", jitter=0.2, loss=0.02, seed=7)),
        options=api.RunOptions(resilience=policy, stats="reps=5"),
    )
    for p in points:
        e = p.result.stats.estimate
        print(f"   {p.network:38s} {e.median * 1e6:10.1f} us "
              f"± {e.halfwidth * 1e6:.1f}")


if __name__ == "__main__":
    main()
