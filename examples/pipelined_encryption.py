#!/usr/bin/env python3
"""Multi-core encryption: the paper's closing prescription, quantified.

§V-C: single-thread encryption cannot keep up with modern fabrics, so
"one will almost have no choice but to parallelize encryption using
multiple threads".  This example sends a 2 MB message over InfiniBand
(where the paper measured 215% ping-pong overhead) three ways:

  1. unencrypted baseline,
  2. serial AES-GCM (the paper's implementation),
  3. chunked AES-GCM pipelined across the node's idle cores
     (repro.encmpi.pipeline),

and sweeps the chunk size to show the overhead collapsing as cores
absorb the crypto.

Run:  python examples/pipelined_encryption.py
"""

# verify-sizes: 2  (sender/receiver pair; the pipeline study is 1-to-1)

from repro.encmpi import CryptoPlan, EncryptedComm, SecurityConfig
from repro.encmpi.pipeline import PipelinedCrypto, plan_pipeline
from repro.models.cpu import parse_cluster_spec
from repro.models.cryptolib import get_profile
from repro.simmpi import run_program
from repro.util.units import KiB, MiB, format_time

SIZE = 2 * MiB
CLUSTER = parse_cluster_spec("2x8")  # 7 idle cores per node


def baseline(ctx):
    if ctx.rank == 0:
        ctx.comm.send(b"z" * SIZE, 1, tag=0)
        return ctx.now
    ctx.comm.recv(0, 0)
    return ctx.now


def serial(ctx):
    enc = EncryptedComm(ctx, SecurityConfig(crypto=CryptoPlan(bytework="modeled")))
    if ctx.rank == 0:
        enc.send(b"z" * SIZE, 1, tag=0)
        return ctx.now
    enc.recv(0, 0)
    return ctx.now


def pipelined(chunk):
    """First-class cryptmpi plan: EncryptedComm itself chunks the send,
    seals on the node's helper cores, and overlaps the wire."""

    def job(ctx):
        enc = EncryptedComm(
            ctx,
            SecurityConfig(crypto=CryptoPlan(
                mode="cryptmpi", chunk_bytes=chunk, bytework="modeled",
            )),
        )
        if ctx.rank == 0:
            enc.send(b"z" * SIZE, 1, tag=0)
            return ctx.now
        enc.recv(0, 0)
        return ctx.now

    return job


def estimated(chunk):
    """The pre-plan static estimator (PipelinedCrypto), kept for the
    back-of-envelope wave arithmetic."""

    def job(ctx):
        enc = EncryptedComm(ctx, SecurityConfig(crypto=CryptoPlan(bytework="modeled")))
        pipe = PipelinedCrypto(enc, chunk_bytes=chunk)
        if ctx.rank == 0:
            pipe.send(b"z" * SIZE, 1, tag=0)
            return ctx.now
        pipe.recv(0, 0)
        return ctx.now

    return job


def main() -> None:
    t_base = run_program(2, baseline, network="infiniband", cluster=CLUSTER).results[1]
    t_serial = run_program(2, serial, network="infiniband", cluster=CLUSTER).results[1]
    print(f"2MB over InfiniBand: baseline {format_time(t_base)}, "
          f"serial AES-GCM {format_time(t_serial)} "
          f"(+{(t_serial / t_base - 1) * 100:.0f}%)")

    print("\npipelined encryption (CryptoPlan mode='cryptmpi', 8 cores/node):")
    for chunk in (1 * MiB, 512 * KiB, 256 * KiB, 128 * KiB, 64 * KiB):
        t = run_program(
            2, pipelined(chunk), network="infiniband", cluster=CLUSTER
        ).results[1]
        t_est = run_program(
            2, estimated(chunk), network="infiniband", cluster=CLUSTER
        ).results[1]
        print(f"  chunk {str(chunk // KiB).rjust(4)}KB: {format_time(t)} "
              f"(+{(t / t_base - 1) * 100:5.1f}% vs baseline; "
              f"static estimate {format_time(t_est)})")

    profile = get_profile("boringssl", "mvapich")
    plan = plan_pipeline(profile, SIZE, cores=8, chunk_bytes=256 * KiB)
    print(f"\nschedule for 2MB @256KB chunks on 8 cores: {plan.nchunks} chunks, "
          f"{plan.waves} wave(s), crypto speedup {plan.speedup:.1f}x")
    print("conclusion: with idle cores absorbing AES-GCM, the 215% single-"
          "thread penalty shrinks to a small constant — the paper's "
          "parallelize-encryption thesis.")


if __name__ == "__main__":
    main()
