#!/usr/bin/env python3
"""Campaign runner: parallel experiment execution with a warm cache.

The paper's evaluation is ~22 artifacts (Tables I-VIII, Figs. 2-15,
plus extras).  ``api.run_campaign`` runs any selection of them across a
worker pool, merges the results in registry order (the simulator is
deterministic, so parallel output is byte-identical to serial), and
memoises each cell in a content-addressed cache keyed by experiment id,
configuration digest, and a fingerprint of the source tree.  A second
run therefore costs nothing — and a code change invalidates exactly
honestly.

The same machinery backs the CLI:

    python -m repro.experiments campaign fast -j 4
    python -m repro.experiments campaign fast -j 4 --expect-all-cached

Run:  python examples/campaign_demo.py
"""

import tempfile

from repro import api

SELECTION = ["fig2", "table1", "table5"]  # three sub-second cells


def main() -> None:
    with tempfile.TemporaryDirectory() as results_dir:
        print(f"— cold campaign: {', '.join(SELECTION)} —")
        cold = api.run_campaign(SELECTION, jobs=2, results_dir=results_dir)
        for cell in cold.cells:
            print(f"  {cell.experiment_id:8s} {cell.seconds:5.2f}s  "
                  f"worker {cell.worker}")
        print(f"  {cold.misses} executed, {cold.hits} cached, "
              f"{cold.duration:.2f}s total")

        print("— warm re-run: every cell served from the cache —")
        warm = api.run_campaign(SELECTION, jobs=2, results_dir=results_dir)
        assert warm.hits == len(SELECTION) and warm.misses == 0
        for cold_cell, warm_cell in zip(cold.cells, warm.cells):
            assert warm_cell.artifact == cold_cell.artifact
        print(f"  {warm.hits} cache hit(s) in {warm.duration:.2f}s "
              f"(fingerprint {warm.code_fingerprint})")

        headline = cold.cell("fig2").artifact["headlines"]
        first = sorted(headline)[0]
        print(f"  sample headline from fig2: {first} = "
              f"{headline[first]['measured']:.2f}")


if __name__ == "__main__":
    main()
