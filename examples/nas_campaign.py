#!/usr/bin/env python3
"""A miniature NAS campaign: the paper's Table IV/VIII experiment.

Runs three NAS proxy benchmarks (CG, FT, IS — the fast ones) at the
paper's 64-rank/8-node scale on both fabrics, for the baseline and all
three cryptographic libraries, and prints the per-benchmark runtimes
and the total-time overheads exactly the way the paper reports them
(totals, not averaged ratios — footnote 2).

For the full seven-benchmark sweep use:
    python -m repro.experiments run table4 table8

Run:  python examples/nas_campaign.py      (~2-3 minutes on one core)
"""

from repro.util.stats import total_time_overhead_percent
from repro.workloads.nas import run_nas

BENCHMARKS = ("cg", "ft", "is")
LIBRARIES = (None, "boringssl", "libsodium", "cryptopp")


def main() -> None:
    for network in ("ethernet", "infiniband"):
        print(f"=== NAS class C, 64 ranks / 8 nodes, {network} ===")
        totals: dict[str | None, list[float]] = {}
        for lib in LIBRARIES:
            row = []
            for bench in BENCHMARKS:
                result = run_nas(bench, network=network, library=lib)
                row.append(result.total_seconds)
            totals[lib] = row
            label = lib or "unencrypted"
            cells = "  ".join(
                f"{b.upper()} {t:6.2f}s" for b, t in zip(BENCHMARKS, row)
            )
            print(f"  {label:12s} {cells}")
        for lib in LIBRARIES[1:]:
            ovh = total_time_overhead_percent(totals[lib], totals[None])
            print(f"  -> {lib} overhead (from totals): {ovh:.2f}%")
        print()


if __name__ == "__main__":
    main()
