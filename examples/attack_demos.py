#!/usr/bin/env python3
"""The §II attacks, live.

The paper's related-work section catalogues why every prior encrypted
MPI was broken.  This script mounts each attack against a working
implementation of the corresponding scheme — and shows AES-GCM
resisting the same attacks.

Run:  python examples/attack_demos.py
"""

# This file demonstrates *attacks*: the constant keys and nonces below
# are the subject matter, not mistakes.
# lint-ok-file: CRY001, CRY003

from repro.crypto import attacks
from repro.crypto.aead import get_aead
from repro.crypto.errors import AuthenticationError
from repro.crypto.modes import CBC, CTR, ECB
from repro.crypto.otp import BigKeyPad, xor_bytes

KEY = bytes(range(32))


def demo_ecb() -> None:
    print("1. ES-MPICH2's ECB mode leaks structure")
    ecb = ECB(KEY)
    # An HPC payload with repeated records (e.g. a sparse matrix with
    # constant blocks).
    record_a, record_b = b"\x11" * 16, b"\x22" * 16
    payload = record_a + record_b + record_a + record_a
    repeats = attacks.ecb_block_repetition(ecb, payload)
    print(f"   repeated ciphertext blocks visible to an eavesdropper: "
          f"{[(blk.hex()[:16] + '..', n) for blk, n in repeats.items()]}")
    gcm_ct = get_aead(KEY).seal(bytes(12), payload)[:-16]
    blocks = [gcm_ct[i : i + 16] for i in range(0, len(gcm_ct), 16)]
    print(f"   under AES-GCM the same payload shows "
          f"{len(blocks) - len(set(blocks))} repeated blocks\n")


def demo_two_time_pad() -> None:
    print("2. VAN-MPICH2's big-key one-time pad reuses pad bytes")
    pad = BigKeyPad(key_len=256)
    secret_a = b"alpha-team coordinates: 48.8566N 2.3522E; strike at dawn!!"
    secret_b = b"bravo-team coordinates: 51.5074N 0.1278W; hold position!!!"
    # Pad the messages to force traffic past the key length.
    msg_a = secret_a.ljust(200, b" ")
    msg_b = secret_b.ljust(200, b" ")
    leaked = attacks.two_time_pad_xor(pad, msg_a, msg_b)
    assert leaked is not None
    print(f"   adversary recovers XOR of the two plaintexts "
          f"({len(leaked)} bytes) without the key")
    # Crib-dragging: knowing message A reveals message B outright.
    recovered_b = xor_bytes(leaked, msg_a[: len(leaked)])
    print(f"   crib-drag with known msg A -> msg B: {recovered_b[:40]!r}...\n")
    assert recovered_b.startswith(b"bravo-team")


def demo_cbc_bitflip() -> None:
    print("3. CBC (hash-then-encrypt systems): no integrity")
    cbc = CBC(KEY)
    plaintext = b"HEADERBLOCK00000" + b"AMOUNT=000000100" + b"TRAILERBLOCK0000"
    forged = attacks.cbc_bitflip(
        cbc, plaintext, 1, b"AMOUNT=000000100", b"AMOUNT=999999999"
    )
    print(f"   attacker rewrote the amount without the key: "
          f"{forged[16:32]!r} (accepted by the receiver)\n")


def demo_ctr_bitflip() -> None:
    print("4. CTR: surgically malleable")
    ctr = CTR(KEY)
    forged = attacks.ctr_bitflip(
        ctr, b"transfer $100", position=10, delta=ord("1") ^ ord("9")
    )
    print(f"   'transfer $100' became {forged!r}\n")


def demo_gcm_resists() -> None:
    print("5. AES-GCM (the paper's choice) rejects all of the above")
    gcm = get_aead(KEY)
    nonce = bytes(12)
    wire = bytearray(gcm.seal(nonce, b"transfer $100"))
    wire[10] ^= 0x08
    try:
        gcm.open(nonce, bytes(wire))
        print("   !!! tampering accepted — this should never print")
    except AuthenticationError as exc:
        print(f"   bit-flip rejected: {exc}")
    print("   (and its CTR core never reuses a keystream thanks to "
          "per-message nonces)\n")


def demo_replay_gap() -> None:
    print("6. Replay: the gap the paper leaves open (footnote 1)")
    gcm = get_aead(KEY)
    nonce = bytes(12)
    wire = gcm.seal(nonce, b"launch the batch job")
    print(f"   first delivery:  {gcm.open(nonce, wire)!r}")
    print(f"   replayed copy:   {gcm.open(nonce, wire)!r}  <- accepted!")
    from repro.encmpi.replay import ReplayError, ReplayGuard

    guard = ReplayGuard()
    guard.check(0)
    try:
        guard.check(0)
    except ReplayError as exc:
        print(f"   with repro.encmpi.replay: {exc}")


def main() -> None:
    demo_ecb()
    demo_two_time_pad()
    demo_cbc_bitflip()
    demo_ctr_bitflip()
    demo_gcm_resists()
    demo_replay_gap()


if __name__ == "__main__":
    main()
