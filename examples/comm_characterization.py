#!/usr/bin/env python3
"""Communication characterization of a NAS proxy.

Uses the simulator's tracing facility to answer, for the FT benchmark
at a reduced scale: how many messages, how many bytes, which routes are
hottest, and what the encrypted +28-byte framing costs on the wire —
the kind of data the paper's overhead analysis is built on.

Run:  python examples/comm_characterization.py
"""

from repro.encmpi import CryptoPlan, EncryptedComm, SecurityConfig
from repro.models.cpu import parse_cluster_spec
from repro.simmpi import run_program
from repro.workloads.nas.common import NasComm
from repro.workloads.nas import get_benchmark

CLUSTER = parse_cluster_spec("4x4")
NRANKS = 16


def characterize(library: str | None):
    bench = get_benchmark("ft")

    def prog(ctx):
        enc = None
        if library is not None:
            enc = EncryptedComm(
                ctx,
                SecurityConfig(
                    crypto=CryptoPlan(library=library, bytework="modeled")
                ),
            )
        comm = NasComm(ctx, enc)
        bench.skeleton(comm, 0)  # one iteration

    result = run_program(NRANKS, prog, cluster=CLUSTER, trace=True)
    return result.trace


def main() -> None:
    print(f"=== FT class C skeleton, one iteration, {NRANKS} ranks ===\n")
    print("-- unencrypted --")
    base = characterize(None)
    print(base.render())

    print("\n-- encrypted (BoringSSL) --")
    enc = characterize("boringssl")
    print(enc.render())

    added = enc.total_wire_bytes - base.total_wire_bytes
    print(
        f"\nwire bytes added by encryption: {added} "
        f"({enc.total_messages} frames x 28 B = "
        f"{added / base.total_wire_bytes * 100:.5f}% of the traffic) — "
        "for bandwidth-bound benchmarks the nonce+tag framing is "
        "negligible; the cost is the encryption *time*, not the bytes."
    )
    heavy = base.heaviest_routes(1)[0]
    print(
        f"hottest route {heavy[0][0]}->{heavy[0][1]} carries "
        f"{heavy[1].payload_bytes / 1e6:.2f} MB per iteration — the "
        "alltoall transpose dominates FT, which is why its encrypted "
        "overhead tracks the alltoall tables rather than ping-pong."
    )


if __name__ == "__main__":
    main()
