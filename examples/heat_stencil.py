#!/usr/bin/env python3
"""A real application on encrypted MPI: 1D-decomposed 2D heat diffusion.

Eight simulated ranks run a Jacobi stencil over a 2D temperature grid,
exchanging *encrypted* halo rows every step (AES-GCM on the actual
float bytes, tamper detection live).  The distributed result is checked
bit-for-bit against a single-process reference, and the virtual-time
cost of the encrypted halo exchange is reported per fabric.

This is the motivating scenario from the paper's introduction: an HPC
computation over sensitive data in a cloud whose *network* cannot be
trusted, while every rank computes on plaintext locally.

Run:  python examples/heat_stencil.py
"""

import numpy as np

from repro.encmpi import EncryptedComm, SecurityConfig
from repro.models.cpu import parse_cluster_spec
from repro.simmpi import run_program

GRID = 96  # global grid: GRID x GRID
STEPS = 25
NRANKS = 8
CLUSTER = parse_cluster_spec("4x2")
TAG_HALO_DOWN = 1  # halo row moving toward higher ranks
TAG_HALO_UP = 2  # halo row moving toward lower ranks


def reference_solution() -> np.ndarray:
    """Single-process Jacobi, the ground truth."""
    grid = initial_grid()
    for _ in range(STEPS):
        grid = jacobi_step(grid)
        grid[GRID // 3, GRID // 2] = 500.0  # the hot spot is a fixed source
    return grid


def initial_grid() -> np.ndarray:
    grid = np.zeros((GRID, GRID))
    grid[0, :] = 100.0  # hot top edge
    grid[-1, :] = -50.0  # cold bottom edge
    grid[GRID // 3, GRID // 2] = 500.0  # a hot spot
    return grid


def jacobi_step(grid: np.ndarray) -> np.ndarray:
    out = grid.copy()
    out[1:-1, 1:-1] = 0.25 * (
        grid[:-2, 1:-1] + grid[2:, 1:-1] + grid[1:-1, :-2] + grid[1:-1, 2:]
    )
    return out


def distributed(ctx):
    rows = GRID // ctx.size
    lo = ctx.rank * rows
    hi = lo + rows
    enc = EncryptedComm(ctx, SecurityConfig(library="boringssl"))

    # Local block plus one ghost row on each side.
    full = initial_grid()
    block = full[max(lo - 1, 0) : min(hi + 1, GRID)].copy()
    has_top_ghost = ctx.rank > 0
    has_bottom_ghost = ctx.rank < ctx.size - 1

    t_comm = 0.0
    for _step in range(STEPS):
        # Encrypted halo exchange with neighbours (real float bytes).
        t0 = ctx.now
        if has_top_ghost:
            first_interior = block[1].tobytes()
            recv_req = enc.irecv(ctx.rank - 1, tag=TAG_HALO_DOWN)
            enc.send(first_interior, ctx.rank - 1, tag=TAG_HALO_UP)
            block[0] = np.frombuffer(recv_req.wait(), dtype=block.dtype)
        if has_bottom_ghost:
            last_interior = block[-2].tobytes()
            recv_req = enc.irecv(ctx.rank + 1, tag=TAG_HALO_UP)
            enc.send(last_interior, ctx.rank + 1, tag=TAG_HALO_DOWN)
            block[-1] = np.frombuffer(recv_req.wait(), dtype=block.dtype)
        t_comm += ctx.now - t0

        block = jacobi_step(block)
        # Physical boundary rows are Dirichlet: restore them.
        if not has_top_ghost:
            block[0] = full[0]
        if not has_bottom_ghost:
            block[-1] = full[-1]
        # Hot spot is a fixed source.
        spot_row = GRID // 3
        start = lo - (1 if has_top_ghost else 0)
        if start <= spot_row < start + block.shape[0]:
            block[spot_row - start, GRID // 2] = 500.0

    interior = block[1 if has_top_ghost else 0 : block.shape[0] - (1 if has_bottom_ghost else 0)]
    return interior.copy(), t_comm, enc.bytes_encrypted


def main() -> None:
    expected = reference_solution()
    for network in ("ethernet", "infiniband"):
        result = run_program(NRANKS, distributed, network=network, cluster=CLUSTER)
        blocks = [r[0] for r in result.results]
        assembled = np.vstack(blocks)
        assert assembled.shape == expected.shape
        max_err = float(np.max(np.abs(assembled - expected)))
        comm_time = max(r[1] for r in result.results)
        enc_bytes = sum(r[2] for r in result.results)
        print(
            f"{network:11s}: distributed == reference (max |err| = {max_err:.2e}); "
            f"{enc_bytes / 1e3:.1f} kB encrypted, halo-exchange time "
            f"{comm_time * 1e3:.3f} ms (virtual), total {result.duration * 1e3:.3f} ms"
        )
    print("every halo row crossed the fabric as AES-GCM ciphertext; "
          "any in-flight bit flip would have raised AuthenticationError")


if __name__ == "__main__":
    main()
