#!/usr/bin/env python3
"""Quickstart: encrypted MPI in five minutes.

Runs a tiny simulated cluster job twice — once over plain MPI, once
over the AES-GCM-encrypted MPI of the paper — and shows (a) the
payload is protected on the wire, (b) tampering is detected, and
(c) what encryption costs in time on the two fabrics the paper studies.

Run:  python examples/quickstart.py
"""

from repro.encmpi import EncryptedComm, SecurityConfig
from repro.models.cpu import ClusterSpec
from repro.simmpi import run_program
from repro.util.units import format_time

MESSAGE = b"patient-record:42;bp=120/80;diagnosis=classified" * 100
CLUSTER = ClusterSpec(nodes=2, cores_per_node=4)


def plain_job(ctx):
    """Two ranks exchanging a record over ordinary MPI."""
    if ctx.rank == 0:
        ctx.comm.send(MESSAGE, 1, tag=0)
        return ctx.now
    data, status = ctx.comm.recv(0, 0)
    assert data == MESSAGE
    return ctx.now


def encrypted_job(ctx):
    """Same exchange through the encrypted layer (BoringSSL profile,
    AES-GCM-256, random nonces — the paper's default)."""
    enc = EncryptedComm(ctx, SecurityConfig(library="boringssl"))
    if ctx.rank == 0:
        enc.send(MESSAGE, 1, tag=0)
        return ctx.now
    data, status = enc.recv(0, 0)
    assert data == MESSAGE
    return ctx.now


def eavesdropper_job(ctx):
    """What does the wire actually carry?  Rank 1 peeks at the raw
    bytes before decrypting: nonce || ciphertext || tag, and the
    plaintext is nowhere in it."""
    enc = EncryptedComm(ctx, SecurityConfig())
    if ctx.rank == 0:
        enc.send(MESSAGE, 1, tag=0)
        return None
    wire = ctx.comm.irecv(0, 0).wait()
    assert len(wire) == len(MESSAGE) + 28, "Algorithm 1: l+28 bytes on the wire"
    assert MESSAGE[:64] not in wire, "plaintext must not appear on the wire"
    plaintext = enc._decrypt_charged(wire)
    assert plaintext == MESSAGE
    return len(wire)


def tamper_job(ctx):
    """An in-network adversary flips one bit: AES-GCM refuses it."""
    from repro.crypto.errors import AuthenticationError

    enc = EncryptedComm(ctx, SecurityConfig())
    if ctx.rank == 0:
        enc.send(MESSAGE, 1, tag=0)
        return None
    wire = bytearray(ctx.comm.irecv(0, 0).wait())
    wire[40] ^= 0x01
    try:
        enc._decrypt_charged(bytes(wire))
    except AuthenticationError:
        return "tamper detected"
    return "TAMPER MISSED"


def main() -> None:
    print("— plain vs encrypted exchange on both fabrics —")
    for network in ("ethernet", "infiniband"):
        t_plain = run_program(2, plain_job, network=network, cluster=CLUSTER)
        t_enc = run_program(2, encrypted_job, network=network, cluster=CLUSTER)
        plain, enc = t_plain.results[1], t_enc.results[1]
        print(
            f"  {network:11s} plain {format_time(plain)}  "
            f"encrypted {format_time(enc)}  (+{(enc / plain - 1) * 100:.1f}%)"
        )

    print("— wire inspection —")
    res = run_program(2, eavesdropper_job, cluster=CLUSTER)
    print(f"  wire carries {res.results[1]} bytes (plaintext {len(MESSAGE)}), "
          "no plaintext visible")

    print("— tamper detection —")
    res = run_program(2, tamper_job, cluster=CLUSTER)
    print(f"  {res.results[1]}")


if __name__ == "__main__":
    main()
