#!/usr/bin/env python3
"""Quickstart: encrypted MPI in five minutes.

Runs a tiny simulated cluster job twice — once over plain MPI, once
over the AES-GCM-encrypted MPI of the paper — and shows (a) the
payload is protected on the wire, (b) tampering is detected, and
(c) what encryption costs in time on the two fabrics the paper studies.

Everything goes through :mod:`repro.api`, the package's stable public
surface: ``run_job`` is the simulated ``mpiexec``, ``sweep`` runs the
(network × security) grid, and a job run with ``security=...`` finds a
ready encrypted communicator on ``ctx.enc``.

Run:  python examples/quickstart.py
"""

# verify-sizes: 2  (every demo job here is a fixed two-rank exchange)

from repro import api
from repro.util.units import format_time

MESSAGE = b"patient-record:42;bp=120/80;diagnosis=classified" * 100
CLUSTER = api.parse_cluster_spec("2x4")
SECURITY = api.SecurityConfig(library="boringssl")


def exchange_job(ctx):
    """Two ranks exchanging a record; encrypted iff the job has a
    SecurityConfig (then ctx.enc is populated, else it is None)."""
    comm = ctx.enc if ctx.enc is not None else ctx.comm
    if ctx.rank == 0:
        comm.send(MESSAGE, 1, tag=0)
        return ctx.now
    data, status = comm.recv(0, 0)
    assert data == MESSAGE
    return ctx.now


def eavesdropper_job(ctx):
    """What does the wire actually carry?  Rank 1 peeks at the raw
    bytes before decrypting: nonce || ciphertext || tag, and the
    plaintext is nowhere in it."""
    if ctx.rank == 0:
        # the mismatch is the demo: receive the AEAD frame raw
        ctx.enc.send(MESSAGE, 1, tag=0)  # lint-ok: MPI105
        return None
    wire = ctx.comm.irecv(0, 0).wait()
    assert len(wire) == len(MESSAGE) + 28, "Algorithm 1: l+28 bytes on the wire"
    assert MESSAGE[:64] not in wire, "plaintext must not appear on the wire"
    plaintext = ctx.enc._decrypt_charged(wire)
    assert plaintext == MESSAGE
    return len(wire)


def tamper_job(ctx):
    """An in-network adversary flips one bit: AES-GCM refuses it."""
    from repro.crypto.errors import AuthenticationError

    if ctx.rank == 0:
        # deliberate plain receive of the AEAD frame, to tamper with it
        ctx.enc.send(MESSAGE, 1, tag=0)  # lint-ok: MPI105
        return None
    wire = bytearray(ctx.comm.irecv(0, 0).wait())
    wire[40] ^= 0x01
    try:
        ctx.enc._decrypt_charged(bytes(wire))
    except AuthenticationError:
        return "tamper detected"
    return "TAMPER MISSED"


def main() -> None:
    print("— plain vs encrypted exchange on both fabrics —")
    points = api.sweep(
        exchange_job,
        nranks=2,
        networks=("ethernet", "infiniband"),
        securities=(None, SECURITY),
        cluster=CLUSTER,
    )
    grid = {p.label: p.result.results[1] for p in points}
    for network in ("ethernet", "infiniband"):
        plain = grid[f"{network}/baseline"]
        enc = grid[f"{network}/{SECURITY.library}"]
        print(
            f"  {network:11s} plain {format_time(plain)}  "
            f"encrypted {format_time(enc)}  (+{(enc / plain - 1) * 100:.1f}%)"
        )

    print("— wire inspection —")
    res = api.run_job(eavesdropper_job, nranks=2, security=api.SecurityConfig(),
                      cluster=CLUSTER)
    print(f"  wire carries {res.results[1]} bytes (plaintext {len(MESSAGE)}), "
          "no plaintext visible")

    print("— tamper detection —")
    res = api.run_job(tamper_job, nranks=2, security=api.SecurityConfig(),
                      cluster=CLUSTER)
    print(f"  {res.results[1]}")


if __name__ == "__main__":
    main()
