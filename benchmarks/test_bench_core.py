"""Core-substrate benchmarks, pytest-benchmark face of repro.experiments.bench.

Each test wraps one registered bench from
:mod:`repro.experiments.bench` in smoke mode, so ``make bench`` and
``pytest benchmarks/test_bench_core.py`` exercise exactly the code
paths the committed ``BENCH_core.json`` baseline tracks.
"""

import pytest

from benchmarks.conftest import run_once
from repro.experiments import bench as core_bench


@pytest.mark.parametrize("name", sorted(core_bench._BENCHES))
def test_core_bench_smoke(benchmark, name):
    _description, fn = core_bench._BENCHES[name]
    result = run_once(benchmark, lambda: fn("smoke"))
    assert "seconds" in result
    if result["seconds"] is not None:
        assert result["seconds"] >= 0.0


def test_bench_document_shape():
    doc = core_bench.run_core_benches("smoke")
    assert doc["schema"] == core_bench.SCHEMA
    assert doc["mode"] == "smoke"
    assert set(doc["benches"]) == set(core_bench._BENCHES)
    # slow experiments must be skipped in smoke mode, not silently run
    assert doc["benches"]["experiment_fig6"]["seconds"] is None


def test_bench_render_with_baseline():
    doc = core_bench.run_core_benches("smoke")
    text = core_bench.render(doc, baseline=doc)
    assert "speedup" in text
    assert "gcm_seal" in text


def test_bench_rejects_unknown_mode():
    with pytest.raises(ValueError):
        core_bench.run_core_benches("fastest")
