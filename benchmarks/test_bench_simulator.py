"""Substrate performance benchmarks: how fast is the simulator itself?

These track the harness's own costs (event throughput, message rate,
crypto throughput of the two AEAD backends) so regressions in the
simulation engine are caught alongside the reproduction results.
"""

import os

from benchmarks.conftest import run_once
from repro.crypto.aead import get_aead
from repro.crypto.backends import HAVE_OPENSSL
from repro.des.engine import Engine
from repro.des.process import Scheduler
from repro.models.cpu import TWO_NODE_CLUSTER
from repro.simmpi import run_program


def test_engine_event_throughput(benchmark):
    def run():
        engine = Engine()
        count = 50_000
        remaining = [count]

        def tick():
            remaining[0] -= 1
            if remaining[0]:
                engine.schedule(1.0, tick)

        engine.schedule(0.0, tick)
        engine.run()
        return count

    assert run_once(benchmark, run) == 50_000


def test_process_handoff_throughput(benchmark):
    def run():
        sched = Scheduler()

        def prog():
            me = sched.current()
            for _ in range(2_000):
                me.sleep(1e-6)

        for _ in range(4):
            sched.spawn(prog)
        sched.run()
        return sched.now

    assert run_once(benchmark, run) > 0


def test_simulated_message_rate(benchmark):
    def run():
        n = 500

        def prog(ctx):
            if ctx.rank == 0:
                for i in range(n):
                    ctx.comm.send(b"x" * 64, 1, tag=0)
            else:
                for i in range(n):
                    ctx.comm.recv(0, 0)

        run_program(2, prog, cluster=TWO_NODE_CLUSTER)
        return n

    assert run_once(benchmark, run) == 500


def test_pure_python_gcm_throughput(benchmark):
    aead = get_aead(bytes(32), "pure")
    payload = os.urandom(4096)
    nonce = bytes(12)

    def run():
        ct = aead.seal(nonce, payload)
        return aead.open(nonce, ct)

    assert run_once(benchmark, run) == payload


def test_openssl_gcm_throughput(benchmark):
    if not HAVE_OPENSSL:
        import pytest

        pytest.skip("cryptography not installed")
    aead = get_aead(bytes(32), "openssl")
    payload = os.urandom(1 << 20)
    nonce = bytes(12)

    def run():
        ct = aead.seal(nonce, payload)
        return aead.open(nonce, ct)

    assert run_once(benchmark, run) == payload
