"""Benchmarks for Tables II/III/VI/VII and Figs. 7/8/14/15:
Encrypted_Bcast and Encrypted_Alltoall at 64 ranks / 8 nodes."""

import pytest

from benchmarks.conftest import run_once
from repro.experiments.figures import fig7, fig8, fig14, fig15
from repro.experiments.tables import table2, table3, table6, table7


def _row(table, label):
    for row_label, cells in table.rows:
        if row_label == label:
            return [float(c.replace(",", "")) for c in cells]
    raise KeyError(label)


def _check_collective_table(artifact, rel_baseline, rel_encrypted):
    """Baseline within *rel_baseline* of the paper; encrypted rows within
    *rel_encrypted* at the bandwidth-dominated 4MB column, and ordered."""
    base = _row(artifact.body, "Unencrypted")
    paper_base = _row(artifact.body, "  (paper) Unencrypted")
    assert base[2] == pytest.approx(paper_base[2], rel=rel_baseline)
    prev = base
    for lib in ("BoringSSL", "Libsodium", "CryptoPP"):
        row = _row(artifact.body, lib)
        paper_row = _row(artifact.body, f"  (paper) {lib}")
        assert row[2] == pytest.approx(paper_row[2], rel=rel_encrypted), lib
        assert row[2] > prev[2]  # each slower library costs more at 4MB
        prev = row


def test_table2_bcast_ethernet(benchmark):
    artifact = run_once(benchmark, table2)
    _check_collective_table(artifact, rel_baseline=0.35, rel_encrypted=0.4)


def test_table3_alltoall_ethernet(benchmark):
    artifact = run_once(benchmark, table3)
    _check_collective_table(artifact, rel_baseline=0.35, rel_encrypted=0.4)


def test_table6_bcast_infiniband(benchmark):
    artifact = run_once(benchmark, table6)
    _check_collective_table(artifact, rel_baseline=0.45, rel_encrypted=0.5)


def test_table7_alltoall_infiniband(benchmark):
    artifact = run_once(benchmark, table7)
    _check_collective_table(artifact, rel_baseline=0.45, rel_encrypted=0.5)


def _check_overhead_figure(artifact):
    series = {s.label: dict(s.points) for s in artifact.body.series}
    sizes = sorted(next(iter(series.values())))
    big = sizes[-1]
    # At the 4MB end the overhead ranking must match the library ranking.
    assert series["BoringSSL"][big] < series["Libsodium"][big]
    assert series["Libsodium"][big] < series["CryptoPP"][big]


def test_fig7_bcast_overhead_ethernet(benchmark):
    _check_overhead_figure(run_once(benchmark, fig7))


def test_fig8_alltoall_overhead_ethernet(benchmark):
    _check_overhead_figure(run_once(benchmark, fig8))


def test_fig14_bcast_overhead_infiniband(benchmark):
    _check_overhead_figure(run_once(benchmark, fig14))


def test_fig15_alltoall_overhead_infiniband(benchmark):
    _check_overhead_figure(run_once(benchmark, fig15))
