"""Benchmarks for Figs. 4-6 and 11-13: OSU multiple-pair bandwidth."""

from benchmarks.conftest import run_once
from repro.experiments.figures import fig4, fig5, fig6, fig11, fig12, fig13


def _series(artifact):
    return {s.label: dict(s.points) for s in artifact.body.series}


def test_fig4_multipair_1b_ethernet(benchmark):
    series = _series(run_once(benchmark, fig4))
    base = series["Unencrypted"]
    # Fig. 4 shape: baseline keeps scaling with pairs on Ethernet.
    assert base[8] > 3.0 * base[2]
    # CryptoPP pays the most for tiny messages.
    assert series["CryptoPP"][8] < series["BoringSSL"][8]


def test_fig5_multipair_16kb_ethernet(benchmark):
    series = _series(run_once(benchmark, fig5))
    base = series["Unencrypted"]
    # Saturates at ~2 pairs...
    assert base[8] < 1.25 * base[2]
    # ...and even CryptoPP reaches ~baseline at 8 pairs (§V-A).
    assert series["CryptoPP"][8] > 0.9 * base[8]


def test_fig6_multipair_2mb_ethernet(benchmark):
    series = _series(run_once(benchmark, fig6))
    base = series["Unencrypted"]
    # Single-pair: CryptoPP is crypto-bound well below the wire.
    assert series["CryptoPP"][1] < 0.6 * base[1]
    # Multi-pair: everyone converges toward the NIC limit.
    assert series["BoringSSL"][8] > 0.9 * base[8]


def test_fig11_multipair_1b_infiniband(benchmark):
    series = _series(run_once(benchmark, fig11))
    base = series["Unencrypted"]
    # Fig. 11: contention throttles the 4->8 pair step.
    assert base[8] < 1.35 * base[4]


def test_fig12_multipair_16kb_infiniband(benchmark):
    series = _series(run_once(benchmark, fig12))
    base = series["Unencrypted"]
    # §V-B: BoringSSL only reaches ~82% of the baseline at 8 pairs.
    ratio = series["BoringSSL"][8] / base[8]
    assert 0.6 < ratio < 0.97


def test_fig13_multipair_2mb_infiniband(benchmark):
    series = _series(run_once(benchmark, fig13))
    base = series["Unencrypted"]
    # Single pair: BoringSSL sits visibly below the 40Gb baseline (its
    # 2.76 GB/s serial encryption paces injection; receive-side
    # decryption pipelines with arrivals, so the gap is ~10-25%, not
    # the naive 2x of enc+dec in series).
    assert series["BoringSSL"][1] < 0.95 * base[1]
    # CryptoPP is genuinely crypto-bound alone.
    assert series["CryptoPP"][1] < 0.55 * base[1]
    # Eight pairs close most of the gap.
    assert series["BoringSSL"][8] > 0.8 * base[8]
