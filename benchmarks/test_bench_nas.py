"""Benchmarks for Tables IV and VIII: NAS class C, 64 ranks / 8 nodes."""

import pytest

from benchmarks.conftest import run_once
from repro.experiments.tables import table4, table8


def _headline(artifact, lib):
    return artifact.headlines[f"{lib} total overhead %"]


def test_table4_nas_ethernet(benchmark):
    artifact = run_once(benchmark, table4)
    # The paper's headline: BoringSSL 12.75%, Libsodium 19.25%,
    # CryptoPP 30.33% — shape gate: right ordering, right ballpark.
    b, b_paper = _headline(artifact, "boringssl")
    l, l_paper = _headline(artifact, "libsodium")
    c, c_paper = _headline(artifact, "cryptopp")
    assert b < l < c
    assert b == pytest.approx(b_paper, abs=6)
    assert l == pytest.approx(l_paper, abs=8)
    assert c == pytest.approx(c_paper, abs=8)
    # Encryption never makes a benchmark faster.
    rows = {label: cells for label, cells in artifact.body.rows}
    base = [float(x.replace(",", "")) for x in rows["Unencrypted"][:-2]]
    for lib in ("BoringSSL", "Libsodium", "CryptoPP"):
        enc = [float(x.replace(",", "")) for x in rows[lib][:-2]]
        assert all(e >= 0.98 * b for e, b in zip(enc, base)), lib


def test_table8_nas_infiniband(benchmark):
    artifact = run_once(benchmark, table8)
    b, b_paper = _headline(artifact, "boringssl")
    l, l_paper = _headline(artifact, "libsodium")
    c, c_paper = _headline(artifact, "cryptopp")
    assert b < l < c
    assert b == pytest.approx(b_paper, abs=8)
    assert c == pytest.approx(c_paper, abs=8)
