"""Ablation benchmarks for the design choices DESIGN.md calls out.

These go beyond the paper's tables: they quantify the knobs the paper
discusses qualitatively — key length, nonce discipline, the collective
algorithm switch points, and the §V-C multi-core encryption remedy.
"""

import pytest

from benchmarks.conftest import run_once
from repro.encmpi.pipeline import plan_pipeline
from repro.models.cryptolib import get_profile
from repro.util.units import KiB, MiB
from repro.workloads.pingpong import pingpong_oneway_time


def test_ablation_key_length_128_vs_256(benchmark):
    """§III-A: 'longer key length means better security ... but also
    slower speed'; the paper found both lengths show the same trends."""

    def run():
        return {
            bits: pingpong_oneway_time(
                2 * MiB, network="ethernet", library="boringssl", key_bits=bits
            )
            for bits in (128, 256)
        }

    times = run_once(benchmark, run)
    assert times[128] < times[256]
    # Same trend: both are far above the baseline, ratio is modest.
    assert times[256] / times[128] < 1.5


def test_ablation_nonce_strategy(benchmark):
    """Counter nonces skip the per-message RAND_bytes call.  The cost
    model charges framing identically (the dominant term is buffer
    handling), so the wire results must be unaffected — this pins down
    that nonce strategy is a *security* choice, not a performance one."""
    from repro.encmpi import EncryptedComm, SecurityConfig
    from repro.models.cpu import ClusterSpec
    from repro.simmpi import run_program

    def run():
        out = {}
        for strategy in ("random", "counter"):
            def prog(ctx, strategy=strategy):
                enc = EncryptedComm(
                    ctx, SecurityConfig(nonce_strategy=strategy)
                )
                if ctx.rank == 0:
                    enc.send(b"x" * 4096, 1)
                    return ctx.now
                enc.recv(0)
                return ctx.now

            res = run_program(2, prog, cluster=ClusterSpec(2, 2))
            out[strategy] = res.results[1]
        return out

    times = run_once(benchmark, run)
    assert times["random"] == pytest.approx(times["counter"], rel=1e-9)


def test_ablation_pipeline_chunk_size(benchmark):
    """§V-C remedy: sweep the encryption chunk size on 8 cores.  Too
    large -> no parallelism; too small -> framing overhead; the sweet
    spot sits in between."""
    profile = get_profile("boringssl", "mvapich")

    def run():
        return {
            chunk: plan_pipeline(profile, 4 * MiB, cores=8, chunk_bytes=chunk)
            for chunk in (4 * MiB, 1 * MiB, 256 * KiB, 64 * KiB, 4 * KiB)
        }

    plans = run_once(benchmark, run)
    assert plans[4 * MiB].speedup == pytest.approx(1.0)
    best = min(p.parallel_time for p in plans.values())
    assert plans[256 * KiB].parallel_time == pytest.approx(best, rel=0.35)
    # Tiny chunks pay per-call framing: slower than the sweet spot.
    assert plans[4 * KiB].parallel_time > plans[256 * KiB].parallel_time


def test_ablation_collective_algorithm_thresholds(benchmark):
    """MPICH's bcast switches from binomial to scatter+allgather at
    12 KiB: verify the large algorithm actually wins above the switch
    (this is why the simulator implements both)."""
    import importlib

    from repro.models.cpu import ClusterSpec
    from repro.simmpi import run_program

    # The collectives package re-exports the bcast *function* under the
    # submodule's name; fetch the module itself to reach the threshold.
    bcast_mod = importlib.import_module("repro.simmpi.collectives.bcast")

    cluster = ClusterSpec(nodes=8, cores_per_node=4)

    def time_bcast(size, force):
        payload = b"\x00" * size

        def prog(ctx):
            original = bcast_mod.BCAST_LONG_THRESHOLD
            bcast_mod.BCAST_LONG_THRESHOLD = force
            try:
                data = payload if ctx.rank == 0 else None
                ctx.comm.bcast(data, 0, nbytes=size)
            finally:
                bcast_mod.BCAST_LONG_THRESHOLD = original
            return ctx.now

        res = run_program(32, prog, network="ethernet", cluster=cluster)
        return max(res.results)

    def run():
        size = 1 * MiB
        return {
            "binomial": time_bcast(size, force=10**9),  # never switch
            "scatter_allgather": time_bcast(size, force=0),  # always switch
        }

    times = run_once(benchmark, run)
    assert times["scatter_allgather"] < times["binomial"]


def test_ablation_eager_vs_rendezvous_boundary(benchmark):
    """The one-way time curve must be continuous-ish across the eager
    threshold — a discontinuity would poison every larger result."""

    def run():
        below = pingpong_oneway_time(64 * KiB, network="ethernet")
        above = pingpong_oneway_time(64 * KiB + 4096, network="ethernet")
        return below, above

    below, above = run_once(benchmark, run)
    assert above > below
    assert above < below * 1.5
