"""Benchmarks for Tables I & V and Figs. 3 & 10: ping-pong."""

import pytest

from benchmarks.conftest import run_once
from repro.experiments.figures import fig3, fig10
from repro.experiments.tables import table1, table5
from repro.util.units import MiB


def _row(table, label):
    for row_label, cells in table.rows:
        if row_label == label:
            return [float(c.replace(",", "")) for c in cells]
    raise KeyError(label)


def test_table1_pingpong_small_ethernet(benchmark):
    artifact = run_once(benchmark, table1)
    measured = _row(artifact.body, "Unencrypted")
    paper = _row(artifact.body, "  (paper) Unencrypted")
    # Baseline is calibrated: within 2% of every paper cell.
    for m, p in zip(measured, paper):
        assert m == pytest.approx(p, rel=0.02)
    # Encrypted predictions: within 30% of each paper cell and
    # correctly ordered (CryptoPP worst for tiny messages).
    boring = _row(artifact.body, "BoringSSL")
    cpp = _row(artifact.body, "CryptoPP")
    paper_boring = _row(artifact.body, "  (paper) BoringSSL")
    for m, p in zip(boring, paper_boring):
        assert m == pytest.approx(p, rel=0.3)
    assert cpp[0] < boring[0]


def test_table5_pingpong_small_infiniband(benchmark):
    artifact = run_once(benchmark, table5)
    boring = _row(artifact.body, "BoringSSL")
    paper_boring = _row(artifact.body, "  (paper) BoringSSL")
    for m, p in zip(boring, paper_boring):
        assert m == pytest.approx(p, rel=0.3)


def test_fig3_pingpong_large_ethernet(benchmark):
    artifact = run_once(benchmark, fig3)
    measured, paper = artifact.headlines["BoringSSL overhead @2MB %"]
    assert measured == pytest.approx(paper, abs=10)  # 78.3% headline


def test_fig10_pingpong_large_infiniband(benchmark):
    artifact = run_once(benchmark, fig10)
    measured, paper = artifact.headlines["BoringSSL overhead @2MB %"]
    assert measured == pytest.approx(paper, abs=25)  # 215.2% headline
    # InfiniBand punishes encryption far harder than Ethernet.
    series = {s.label: dict(s.points) for s in artifact.body.series}
    gap_ib = series["Unencrypted"][2 * MiB] / series["BoringSSL"][2 * MiB]
    assert gap_ib > 2.5
