"""Shared benchmark configuration.

Every benchmark regenerates one of the paper's artifacts end-to-end.
The simulator is deterministic, so a single round is a complete
measurement; wall-clock time here measures the harness itself, while
the *virtual* results are asserted against the paper's shapes inside
each benchmark body.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)


def run_once(benchmark, fn):
    """Run *fn* exactly once under pytest-benchmark and return its value."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
