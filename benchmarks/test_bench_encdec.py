"""Benchmarks for Fig. 2 and Fig. 9: the encryption-decryption curves,
plus the real measured AES-GCM curve on this host."""

import pytest

from benchmarks.conftest import run_once
from repro.experiments.figures import fig2, fig9
from repro.models.cryptolib import get_profile
from repro.util.units import KiB, MiB
from repro.workloads.encdec import measured_encdec_curve


def test_fig2_encdec_gcc(benchmark):
    artifact = run_once(benchmark, fig2)
    series = {s.label: dict(s.points) for s in artifact.body.series}
    # Paper anchors: BoringSSL 1381 MB/s and CryptoPP 273 MB/s at 2 MB.
    assert series["BoringSSL"][2 * MiB] == pytest.approx(1381, rel=0.01)
    assert series["CryptoPP"][2 * MiB] == pytest.approx(273, rel=0.01)
    # Ranking holds at every plotted size.
    for size in series["BoringSSL"]:
        assert series["BoringSSL"][size] > series["Libsodium"][size]
        assert series["Libsodium"][size] >= series["CryptoPP"][size] * 0.99


def test_fig9_encdec_mvapich(benchmark):
    artifact = run_once(benchmark, fig9)
    series = {s.label: dict(s.points) for s in artifact.body.series}
    # §V-B: the MVAPICH compiler dramatically improves CryptoPP >64 KB.
    gcc = get_profile("cryptopp", "gcc")
    for size in (256 * KiB, 1 * MiB, 2 * MiB):
        assert series["CryptoPP"][size] > gcc.encdec_throughput(size) / 1e6


def test_encdec_measured_real_aesgcm(benchmark):
    """Honest hardware datapoint: real OpenSSL-backed AES-GCM-256."""
    results = run_once(
        benchmark,
        lambda: measured_encdec_curve(
            sizes=(256, 16 * KiB, 1 * MiB), target_seconds=0.02
        ),
    )
    # Shape property shared with Fig. 2: throughput grows with size and
    # saturates; absolute values are hardware-specific.
    assert results[16 * KiB].mean > results[256].mean
    assert results[1 * MiB].mean > results[256].mean
