"""What-if ablation: Libsodium under its native ChaCha20-Poly1305.

§III-B notes Libsodium "only supports AES-GCM with 256-bit keys" — its
native AEAD is ChaCha20-Poly1305, which needs no AES-NI and runs at a
CPU-independent rate (typically 1.5-3 GB/s on a 2015-era Xeon core,
i.e. *faster* than Libsodium's ~0.58 GB/s AES-GCM but slower than
BoringSSL's AES-NI path at large sizes).

The ablation measures both AEADs for real on this host and replays the
2 MB Ethernet ping-pong under a ChaCha-rate profile, showing where the
paper's Libsodium column would have landed with its native cipher.
"""

import os
import time

import pytest

from benchmarks.conftest import run_once
from repro.crypto.aead import get_aead
from repro.crypto.chacha import ChaCha20Poly1305
from repro.util.units import MiB


def _throughput(seal, open_, size, seconds=0.05):
    payload = os.urandom(size)
    nonce = bytes(12)
    t0 = time.perf_counter()
    ct = seal(nonce, payload)
    open_(nonce, ct)
    once = max(time.perf_counter() - t0, 1e-9)
    iters = max(3, int(seconds / once))
    t0 = time.perf_counter()
    for _ in range(iters):
        ct = seal(nonce, payload)
        open_(nonce, ct)
    return size * iters / (time.perf_counter() - t0)


def test_ablation_chacha_vs_gcm_measured(benchmark):
    """Real measured enc+dec throughput of both AEADs on this host.

    The assertable property is cipher-agnostic: both run at practical
    rates and both frame ct||tag identically, so swapping them inside
    encrypted MPI is free.
    """
    cryptography = pytest.importorskip("cryptography")  # noqa: F841
    from cryptography.hazmat.primitives.ciphers.aead import (
        ChaCha20Poly1305 as OsslChaCha,
    )

    key = os.urandom(32)
    gcm = get_aead(key, "openssl")
    chacha = OsslChaCha(key)

    def run():
        return {
            "aes-gcm": _throughput(gcm.seal, gcm.open, 1 * MiB),
            "chacha20-poly1305": _throughput(
                lambda n, p: chacha.encrypt(n, p, None),
                lambda n, c: chacha.decrypt(n, c, None),
                1 * MiB,
            ),
        }

    rates = run_once(benchmark, run)
    assert rates["aes-gcm"] > 50e6
    assert rates["chacha20-poly1305"] > 50e6


def test_ablation_pure_chacha_correct_under_mpi_frame(benchmark):
    """The from-scratch ChaCha backend drives the AEAD interface used by
    encrypted MPI: same +28-byte wire overhead, same tamper rejection."""
    aead = get_aead(os.urandom(32), "chacha")

    def run():
        nonce = os.urandom(12)
        wire = nonce + aead.seal(nonce, b"payload" * 100)
        assert len(wire) == 700 + 28
        return aead.open(wire[:12], wire[12:])

    assert run_once(benchmark, run) == b"payload" * 100


def test_ablation_chacha_rate_pingpong_model(benchmark):
    """Replay the 2 MB Ethernet ping-pong with Libsodium's AES-GCM rate
    (583 MB/s enc-dec) swapped for a native-ChaCha rate (~1.5 GB/s on
    the paper's Xeon class): the overhead drops from ~170% toward the
    BoringSSL bracket."""
    from repro.models.network import ethernet_10g

    net = ethernet_10g()
    base = net.pingpong_oneway_time(2 * MiB)

    def run():
        out = {}
        for label, encdec_rate in (("libsodium-gcm", 583e6), ("libsodium-chacha", 1500e6)):
            added = 2 * MiB / encdec_rate
            out[label] = (base + added) / base - 1.0
        return out

    overheads = run_once(benchmark, run)
    assert overheads["libsodium-chacha"] < 0.6 * overheads["libsodium-gcm"]
